//! Compressed sparse column storage, the format used by the Cholesky stack.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use crate::multivec::MultiVec;
use crate::perm::Permutation;

/// A sparse matrix in compressed sparse column (CSC) form.
///
/// Invariants maintained by every constructor:
///
/// - `colptr` has length `ncols + 1`, is non-decreasing, starts at `0` and
///   ends at `nnz`;
/// - row indices within each column are strictly increasing (sorted, no
///   duplicates) and smaller than `nrows`;
/// - all stored values are finite.
///
/// # Example
///
/// ```
/// use tracered_sparse::{CooMatrix, CscMatrix};
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0)?;
/// coo.push(1, 0, -1.0)?;
/// coo.push(1, 1, 2.0)?;
/// let a: CscMatrix = coo.to_csc();
/// let y = a.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![2.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidFormat`] if the column pointer is
    /// malformed or row indices are unsorted/duplicated, and
    /// [`SparseError::InvalidValue`] if any value is non-finite.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::InvalidFormat {
                what: format!("colptr length {} != ncols + 1 = {}", colptr.len(), ncols + 1),
            });
        }
        if colptr[0] != 0 || *colptr.last().unwrap() != rowidx.len() {
            return Err(SparseError::InvalidFormat {
                what: "colptr must start at 0 and end at nnz".into(),
            });
        }
        if rowidx.len() != values.len() {
            return Err(SparseError::InvalidFormat {
                what: "rowidx and values must have equal length".into(),
            });
        }
        for c in 0..ncols {
            if colptr[c] > colptr[c + 1] {
                return Err(SparseError::InvalidFormat {
                    what: format!("colptr decreases at column {c}"),
                });
            }
            for k in colptr[c]..colptr[c + 1] {
                if rowidx[k] >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: rowidx[k],
                        col: c,
                        nrows,
                        ncols,
                    });
                }
                if k > colptr[c] && rowidx[k - 1] >= rowidx[k] {
                    return Err(SparseError::InvalidFormat {
                        what: format!("row indices not strictly increasing in column {c}"),
                    });
                }
                if !values[k].is_finite() {
                    return Err(SparseError::InvalidValue {
                        what: format!("non-finite entry at ({}, {c})", rowidx[k]),
                    });
                }
            }
        }
        Ok(CscMatrix { nrows, ncols, colptr, rowidx, values })
    }

    /// An `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// An `nrows` × `ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row-index array (`nnz` entries, sorted within each column).
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (the pattern stays fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Structure views plus mutable values, borrowed simultaneously —
    /// for in-place numeric kernels (the rank-1 update walk) that read
    /// the pattern while editing values.
    pub(crate) fn parts_mut(&mut self) -> (&[usize], &[usize], &mut [f64]) {
        (&self.colptr, &self.rowidx, &mut self.values)
    }

    /// Row indices and values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.ncols()`.
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let range = self.colptr[c]..self.colptr[c + 1];
        (&self.rowidx[range.clone()], &self.values[range])
    }

    /// Value at `(row, col)`, `0.0` when the entry is not stored.
    ///
    /// Runs a binary search within the column.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let (rows, vals) = self.col(col);
        match rows.binary_search(&row) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)` in
    /// column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals.iter()).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Dense matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer (`y` is
    /// overwritten).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        assert_eq!(y.len(), self.nrows, "output length must equal nrows");
        y.fill(0.0);
        for c in 0..self.ncols {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for k in self.colptr[c]..self.colptr[c + 1] {
                y[self.rowidx[k]] += self.values[k] * xc;
            }
        }
    }

    /// Matrix–vector product of a **symmetric** matrix on `threads`
    /// workers (`y` is overwritten).
    ///
    /// Symmetry lets a CSC matrix be read row-wise: row `i` of `A` is
    /// column `i`, so `y[i]` becomes an independent gather
    /// `Σ_k values[k] · x[rowidx[k]]` over column `i` — embarrassingly
    /// parallel with no scattered writes. Rows are chunked onto a
    /// work-stealing queue; the gather accumulates partner contributions
    /// in the same (increasing-index) order for every thread count, so
    /// results are deterministic and agree with [`CscMatrix::matvec_into`]
    /// up to the `x[j] == 0` terms that the serial scatter skips (exact
    /// numeric equality, possible `±0.0` sign differences only).
    ///
    /// Callers are responsible for symmetry (Laplacians and SPD systems
    /// in this workspace); the matrix is **not** validated per call —
    /// check once at the call boundary (as `pcg_with_guess` does) when
    /// the matrix origin is uncertain.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or dimensions disagree.
    pub fn sym_matvec_into_threads(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(self.nrows, self.ncols, "symmetric matvec requires a square matrix");
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        assert_eq!(y.len(), self.nrows, "output length must equal nrows");
        let chunk = tracered_par::chunk_size(self.nrows, threads, 512);
        tracered_par::par_chunks_mut(y, chunk, threads, |start, out| {
            for (off, yi) in out.iter_mut().enumerate() {
                let i = start + off;
                let mut acc = 0.0;
                for k in self.colptr[i]..self.colptr[i + 1] {
                    acc += self.values[k] * x[self.rowidx[k]];
                }
                *yi = acc;
            }
        });
    }

    /// Sparse matrix × dense block product `Y = A X` (SpMM).
    ///
    /// # Panics
    ///
    /// Panics if `x.nrows() != self.ncols()`.
    pub fn mul_multi(&self, x: &MultiVec) -> MultiVec {
        let mut y = MultiVec::zeros(self.nrows, x.ncols());
        self.mul_multi_into(x, &mut y);
        y
    }

    /// SpMM into a caller-provided block (`y` is overwritten).
    ///
    /// Streams the matrix once for the whole batch: each matrix column is
    /// scattered into all `k` output columns while it is cache-hot, which
    /// lifts the memory-bound SpMV to matrix–matrix intensity. Column `c`
    /// of the result is bit-identical to `self.matvec(x.col(c))` — the
    /// per-column scatter order and the `x == 0` skip are the same.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn mul_multi_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.nrows(), self.ncols, "block rows must equal ncols");
        assert_eq!(y.nrows(), self.nrows, "output rows must equal nrows");
        assert_eq!(y.ncols(), x.ncols(), "output width must match input width");
        y.fill_zero();
        let k = x.ncols();
        for j in 0..self.ncols {
            for c in 0..k {
                let xj = x.col(c)[j];
                if xj == 0.0 {
                    continue;
                }
                let yc = y.col_mut(c);
                for p in self.colptr[j]..self.colptr[j + 1] {
                    yc[self.rowidx[p]] += self.values[p] * xj;
                }
            }
        }
    }

    /// SpMM of a **symmetric** matrix on `threads` workers (`y` is
    /// overwritten) — the blocked counterpart of
    /// [`CscMatrix::sym_matvec_into_threads`], sharing its row-gather
    /// formulation and caller-checks-symmetry contract.
    ///
    /// Work is tiled as (column, row-range) jobs on the work-stealing
    /// queue of [`tracered_par`], so batch width and thread count compose:
    /// a width-2 batch on 8 threads still occupies every worker. Each
    /// output element is an independent gather in fixed index order, so
    /// results are bit-identical for every thread count and match
    /// [`CscMatrix::sym_matvec_into_threads`] column for column.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or shapes disagree.
    pub fn sym_mul_multi_into_threads(&self, x: &MultiVec, y: &mut MultiVec, threads: usize) {
        assert_eq!(self.nrows, self.ncols, "symmetric SpMM requires a square matrix");
        assert_eq!(x.nrows(), self.ncols, "block rows must equal ncols");
        assert_eq!(y.nrows(), self.nrows, "output rows must equal nrows");
        assert_eq!(y.ncols(), x.ncols(), "output width must match input width");
        let chunk = tracered_par::chunk_size(self.nrows, threads, 512).max(1);
        let mut jobs: Vec<(usize, usize, &mut [f64])> = Vec::new();
        for (c, ycol) in y.cols_mut().enumerate() {
            let mut start = 0;
            for piece in ycol.chunks_mut(chunk) {
                let len = piece.len();
                jobs.push((c, start, piece));
                start += len;
            }
        }
        tracered_par::par_jobs(jobs, threads, |(c, start, out)| {
            let xc = x.col(c);
            for (off, yi) in out.iter_mut().enumerate() {
                let i = start + off;
                let mut acc = 0.0;
                for p in self.colptr[i]..self.colptr[i + 1] {
                    acc += self.values[p] * xc[self.rowidx[p]];
                }
                *yi = acc;
            }
        });
    }

    /// Infinity norm of the residual `A x − b`, a convenience for tests and
    /// solver verification.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn residual_inf_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "rhs length must equal nrows");
        let ax = self.matvec(x);
        ax.iter().zip(b.iter()).map(|(a, bb)| (a - bb).abs()).fold(0.0, f64::max)
    }

    /// Transpose.
    pub fn transpose(&self) -> CscMatrix {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            colptr[r + 1] += 1;
        }
        for r in 0..self.nrows {
            colptr[r + 1] += colptr[r];
        }
        let mut next = colptr.clone();
        let mut rowidx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for c in 0..self.ncols {
            for k in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowidx[k];
                let slot = next[r];
                next[r] += 1;
                rowidx[slot] = c;
                values[slot] = self.values[k];
            }
        }
        // Row indices within each output column are automatically sorted
        // because we sweep source columns in increasing order.
        CscMatrix { nrows: self.ncols, ncols: self.nrows, colptr, rowidx, values }
    }

    /// Converts to compressed sparse row format.
    pub fn to_csr(&self) -> CsrMatrix {
        let t = self.transpose();
        CsrMatrix::from_csc_transpose(t)
    }

    /// Converts to a dense matrix (intended for small test problems).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Returns `true` if the matrix is square and exactly symmetric
    /// (pattern and values).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.colptr == t.colptr && self.rowidx == t.rowidx && {
            self.values.iter().zip(t.values.iter()).all(|(a, b)| a == b)
        }
    }

    /// Returns `true` if the matrix is symmetric up to absolute tolerance
    /// `tol` on the values (pattern must still match).
    pub fn is_symmetric_within(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.colptr == t.colptr
            && self.rowidx == t.rowidx
            && self.values.iter().zip(t.values.iter()).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Extracts the upper triangle (including the diagonal) as a CSC matrix.
    pub fn upper_triangle(&self) -> CscMatrix {
        self.filter(|r, c, _| r <= c)
    }

    /// Extracts the lower triangle (including the diagonal) as a CSC matrix.
    pub fn lower_triangle(&self) -> CscMatrix {
        self.filter(|r, c, _| r >= c)
    }

    /// Keeps only entries for which the predicate returns `true`.
    pub fn filter(&self, mut keep: impl FnMut(usize, usize, f64) -> bool) -> CscMatrix {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        for c in 0..self.ncols {
            for k in self.colptr[c]..self.colptr[c + 1] {
                let (r, v) = (self.rowidx[k], self.values[k]);
                if keep(r, c, v) {
                    rowidx.push(r);
                    values.push(v);
                }
            }
            colptr[c + 1] = rowidx.len();
        }
        CscMatrix { nrows: self.nrows, ncols: self.ncols, colptr, rowidx, values }
    }

    /// Adds `shift[i]` to each diagonal entry `(i, i)`, inserting the
    /// diagonal entry when absent.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular matrices and
    /// [`SparseError::DimensionMismatch`] if `shift.len() != n`.
    pub fn add_diagonal(&self, shift: &[f64]) -> Result<CscMatrix, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare { nrows: self.nrows, ncols: self.ncols });
        }
        if shift.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                found: shift.len(),
            });
        }
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::with_capacity(self.nnz() + self.ncols);
        let mut values = Vec::with_capacity(self.nnz() + self.ncols);
        for c in 0..self.ncols {
            let mut placed = false;
            for k in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowidx[k];
                if !placed && r > c && shift[c] != 0.0 {
                    rowidx.push(c);
                    values.push(shift[c]);
                    placed = true;
                }
                let v = if r == c {
                    placed = true;
                    self.values[k] + shift[c]
                } else {
                    self.values[k]
                };
                rowidx.push(r);
                values.push(v);
            }
            if !placed && shift[c] != 0.0 {
                rowidx.push(c);
                values.push(shift[c]);
            }
            colptr[c + 1] = rowidx.len();
        }
        Ok(CscMatrix { nrows: self.nrows, ncols: self.ncols, colptr, rowidx, values })
    }

    /// The diagonal of the matrix as a dense vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, item) in d.iter_mut().enumerate() {
            *item = self.get(i, i);
        }
        d
    }

    /// Symmetric permutation `C = P A Pᵀ` returning the **upper triangle**
    /// of the result, as required by the symbolic Cholesky analysis.
    ///
    /// The input must be square and symmetric; only its upper triangle is
    /// read. `perm` maps new indices to old ones.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs and
    /// [`SparseError::DimensionMismatch`] if the permutation size differs
    /// from `n`.
    pub fn symmetric_perm_upper(&self, perm: &Permutation) -> Result<CscMatrix, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare { nrows: self.nrows, ncols: self.ncols });
        }
        let n = self.ncols;
        if perm.len() != n {
            return Err(SparseError::DimensionMismatch { expected: n, found: perm.len() });
        }
        let old_to_new = perm.as_old_to_new();
        // Count entries per new column.
        let mut colptr = vec![0usize; n + 1];
        for c in 0..n {
            for k in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowidx[k];
                if r > c {
                    continue; // read upper triangle only (r <= c)
                }
                let (nr, nc) = (old_to_new[r], old_to_new[c]);
                let newcol = nr.max(nc);
                colptr[newcol + 1] += 1;
            }
        }
        for c in 0..n {
            colptr[c + 1] += colptr[c];
        }
        let nnz = colptr[n];
        let mut next = colptr.clone();
        let mut rowidx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for c in 0..n {
            for k in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowidx[k];
                if r > c {
                    continue;
                }
                let (nr, nc) = (old_to_new[r], old_to_new[c]);
                let (newrow, newcol) = (nr.min(nc), nr.max(nc));
                let slot = next[newcol];
                next[newcol] += 1;
                rowidx[slot] = newrow;
                values[slot] = self.values[k];
            }
        }
        // Sort rows within each column.
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..n {
            let range = colptr[c]..colptr[c + 1];
            scratch.clear();
            scratch.extend(
                rowidx[range.clone()].iter().copied().zip(values[range.clone()].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for (off, &(r, v)) in scratch.iter().enumerate() {
                rowidx[colptr[c] + off] = r;
                values[colptr[c] + off] = v;
            }
        }
        Ok(CscMatrix { nrows: n, ncols: n, colptr, rowidx, values })
    }

    /// Computes `A + s·B` for matrices with identical dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if shapes differ.
    pub fn add_scaled(&self, other: &CscMatrix, s: f64) -> Result<CscMatrix, SparseError> {
        if self.nrows != other.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: other.nrows,
            });
        }
        if self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                found: other.ncols,
            });
        }
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        for c in 0..self.ncols {
            let (ra, va) = self.col(c);
            let (rb, vb) = other.col(c);
            let (mut i, mut j) = (0, 0);
            while i < ra.len() || j < rb.len() {
                let (r, v) = if j >= rb.len() || (i < ra.len() && ra[i] < rb[j]) {
                    let out = (ra[i], va[i]);
                    i += 1;
                    out
                } else if i >= ra.len() || rb[j] < ra[i] {
                    let out = (rb[j], s * vb[j]);
                    j += 1;
                    out
                } else {
                    let out = (ra[i], va[i] + s * vb[j]);
                    i += 1;
                    j += 1;
                    out
                };
                if v != 0.0 {
                    rowidx.push(r);
                    values.push(v);
                }
            }
            colptr[c + 1] = rowidx.len();
        }
        Ok(CscMatrix { nrows: self.nrows, ncols: self.ncols, colptr, rowidx, values })
    }

    /// Estimated memory footprint of the stored matrix in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.colptr.len() * std::mem::size_of::<usize>()
            + self.rowidx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// A 64-bit content fingerprint: FNV-1a over the shape, the sparsity
    /// structure, and the exact bit patterns of the stored values.
    ///
    /// Two matrices fingerprint equal iff they have identical dimensions,
    /// `colptr`/`rowidx` arrays, and bit-identical values (`0.0` and
    /// `-0.0` hash differently, as do distinct NaN payloads). Used by the
    /// service layer's factor cache to key factorizations by matrix
    /// content without retaining the matrix itself.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        for &p in &self.colptr {
            mix(p as u64);
        }
        for &r in &self.rowidx {
            mix(r as u64);
        }
        for &v in &self.values {
            mix(v.to_bits());
        }
        h
    }
}

impl From<&CooMatrix> for CscMatrix {
    fn from(coo: &CooMatrix) -> Self {
        coo.to_csc()
    }
}

/// Minimum slice length per chunk for the dense vector kernels below —
/// per-element work is a couple of flops, so chunks must be long enough
/// to amortise scheduling.
const VEC_MIN_CHUNK: usize = 4096;

/// `y ← y + α x` on `threads` workers.
///
/// Element-wise independent, so results are bit-identical for every
/// thread count.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_axpy(y: &mut [f64], alpha: f64, x: &[f64], threads: usize) {
    assert_eq!(y.len(), x.len(), "axpy operands must have equal length");
    let chunk = tracered_par::chunk_size(y.len(), threads, VEC_MIN_CHUNK);
    tracered_par::par_chunks_mut(y, chunk, threads, |start, out| {
        for (off, yi) in out.iter_mut().enumerate() {
            *yi += alpha * x[start + off];
        }
    });
}

/// `p ← z + β p` on `threads` workers (the PCG direction update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_xpby(p: &mut [f64], beta: f64, z: &[f64], threads: usize) {
    assert_eq!(p.len(), z.len(), "xpby operands must have equal length");
    let chunk = tracered_par::chunk_size(p.len(), threads, VEC_MIN_CHUNK);
    tracered_par::par_chunks_mut(p, chunk, threads, |start, out| {
        for (off, pi) in out.iter_mut().enumerate() {
            *pi = z[start + off] + beta * *pi;
        }
    });
}

/// Chunked dot product `aᵀ b` on `threads` workers.
///
/// The chunk decomposition is fixed by the input length (never by the
/// thread count) and partial sums combine in chunk order, so the result
/// is deterministic across thread counts — though not bit-identical to
/// a single serial fold.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_dot(a: &[f64], b: &[f64], threads: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    // Fixed chunk (independent of `threads`) keeps the reduction order —
    // and therefore the result — invariant across thread counts.
    tracered_par::par_reduce_f64(a.len(), VEC_MIN_CHUNK, threads, |lo, hi| {
        a[lo..hi].iter().zip(b[lo..hi].iter()).map(|(x, y)| x * y).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CscMatrix {
        // [ 2 -1  0 ]
        // [-1  3 -1 ]
        // [ 0 -1  2 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (1, 1, 3.0),
            (2, 2, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        assert!(
            CscMatrix::from_raw_parts(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]).is_err(),
            "unsorted rows must be rejected"
        );
        assert!(
            CscMatrix::from_raw_parts(2, 2, vec![0, 2, 2], vec![0, 0], vec![1.0, 1.0]).is_err(),
            "duplicate rows must be rejected"
        );
        assert!(
            CscMatrix::from_raw_parts(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err(),
            "row out of bounds must be rejected"
        );
        assert!(
            CscMatrix::from_raw_parts(2, 2, vec![0, 1, 1], vec![0], vec![f64::NAN]).is_err(),
            "NaN must be rejected"
        );
    }

    #[test]
    fn get_and_nnz() {
        let a = small();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn sym_matvec_matches_serial_scatter_for_all_thread_counts() {
        // A larger symmetric matrix: path Laplacian + diagonal shift.
        let n = 300;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            let w = 0.5 + (i % 7) as f64;
            coo.push(i, i + 1, -w).unwrap();
            coo.push(i + 1, i, -w).unwrap();
            coo.push(i, i, w).unwrap();
            coo.push(i + 1, i + 1, w).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 0.25).unwrap();
        }
        let a = coo.to_csc();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 11) as f64) - 5.0).collect();
        let serial = a.matvec(&x);
        for threads in [1usize, 2, 4, 8] {
            let mut y = vec![0.0; n];
            a.sym_matvec_into_threads(&x, &mut y, threads);
            for (i, (s, p)) in serial.iter().zip(y.iter()).enumerate() {
                assert!(
                    (s - p).abs() == 0.0,
                    "row {i}: serial {s} vs par {p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn mul_multi_matches_matvec_per_column() {
        let a = small();
        let cols =
            [vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 0.5], vec![0.0, 0.0, 0.0], vec![9.0, -9.0, 1.0]];
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let x = MultiVec::from_columns(&refs).unwrap();
        let y = a.mul_multi(&x);
        assert_eq!(y.ncols(), 4);
        for (c, col) in cols.iter().enumerate() {
            let single = a.matvec(col);
            for (s, m) in single.iter().zip(y.col(c).iter()) {
                assert_eq!(s.to_bits(), m.to_bits(), "column {c}");
            }
        }
    }

    #[test]
    fn sym_mul_multi_matches_sym_matvec_for_all_thread_counts() {
        // Path Laplacian + shift, as in the single-vector test.
        let n = 257;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            let w = 0.5 + (i % 5) as f64;
            coo.push_symmetric(i, i + 1, -w).unwrap();
            coo.push(i, i, w).unwrap();
            coo.push(i + 1, i + 1, w).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 0.3).unwrap();
        }
        let a = coo.to_csc();
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|c| (0..n).map(|i| ((i * 11 + c * 3) % 13) as f64 - 6.0).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let x = MultiVec::from_columns(&refs).unwrap();
        let mut singles = Vec::new();
        for col in &cols {
            let mut y = vec![0.0; n];
            a.sym_matvec_into_threads(col, &mut y, 1);
            singles.push(y);
        }
        for threads in [1usize, 2, 4, 8] {
            let mut y = MultiVec::zeros(n, 3);
            a.sym_mul_multi_into_threads(&x, &mut y, threads);
            for (c, single) in singles.iter().enumerate() {
                for (i, (s, m)) in single.iter().zip(y.col(c).iter()).enumerate() {
                    assert_eq!(s.to_bits(), m.to_bits(), "column {c} row {i} at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn vector_kernels_match_serial_for_all_thread_counts() {
        let n = 10_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let base: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut serial = base.clone();
        par_axpy(&mut serial, 0.37, &x, 1);
        let dot1 = par_dot(&serial, &x, 1);
        for threads in [2usize, 4, 8] {
            let mut y = base.clone();
            par_axpy(&mut y, 0.37, &x, threads);
            assert!(serial.iter().zip(y.iter()).all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(dot1.to_bits(), par_dot(&y, &x, threads).to_bits());
            let mut p = base.clone();
            let mut p1 = base.clone();
            par_xpby(&mut p, -0.8, &x, threads);
            par_xpby(&mut p1, -0.8, &x, 1);
            assert!(p.iter().zip(p1.iter()).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_checks() {
        let a = small();
        assert!(a.is_symmetric());
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        assert!(!coo.to_csc().is_symmetric());
    }

    #[test]
    fn triangles_partition_entries() {
        let a = small();
        let u = a.upper_triangle();
        let l = a.lower_triangle();
        // Diagonal is in both.
        assert_eq!(u.nnz() + l.nnz(), a.nnz() + 3);
        assert_eq!(u.get(0, 1), -1.0);
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(l.get(1, 0), -1.0);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn add_diagonal_inserts_and_updates() {
        let a = small();
        let b = a.add_diagonal(&[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(b.get(0, 0), 2.5);
        // Insertion into a matrix missing a diagonal entry:
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, -1.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        let c = coo.to_csc().add_diagonal(&[3.0, 4.0]).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(1, 1), 4.0);
        assert_eq!(c.get(1, 0), -1.0);
        assert!(c.is_symmetric_within(0.0) || c.is_symmetric());
    }

    #[test]
    fn symmetric_perm_preserves_values() {
        let a = small();
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let c = a.symmetric_perm_upper(&p).unwrap();
        // c is the upper triangle of P A P^T. Check against dense.
        let ad = a.to_dense();
        for newc in 0..3 {
            for newr in 0..=newc {
                let (oldr, oldc) = (p.new_to_old(newr), p.new_to_old(newc));
                assert_eq!(c.get(newr, newc), ad[(oldr, oldc)], "entry ({newr},{newc})");
            }
        }
        // Strictly lower part must be empty.
        for (r, cc, _) in c.iter() {
            assert!(r <= cc);
        }
    }

    #[test]
    fn add_scaled_merges_patterns() {
        let a = small();
        let i = CscMatrix::identity(3);
        let b = a.add_scaled(&i, 2.0).unwrap();
        assert_eq!(b.get(0, 0), 4.0);
        assert_eq!(b.get(1, 1), 5.0);
        assert_eq!(b.get(0, 1), -1.0);
        // Cancellation drops entries.
        let z = a.add_scaled(&a, -1.0).unwrap();
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = small();
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 2.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let a = small();
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[(r, c)], a.get(r, c));
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let a = small();
        assert_eq!(a.fingerprint(), small().fingerprint(), "deterministic");
        // A value change, a structure change, and a shape change all move
        // the fingerprint.
        let mut bumped = a.clone();
        bumped.values_mut()[0] = f64::from_bits(bumped.values()[0].to_bits() + 1);
        assert_ne!(a.fingerprint(), bumped.fingerprint());
        assert_ne!(a.fingerprint(), CscMatrix::identity(3).fingerprint());
        assert_ne!(CscMatrix::zeros(3, 3).fingerprint(), CscMatrix::zeros(4, 4).fingerprint());
        // Signed zeros are distinct bit patterns on purpose.
        let mut pos = a.clone();
        pos.values_mut()[0] = 0.0;
        let mut neg = a;
        neg.values_mut()[0] = -0.0;
        assert_ne!(pos.fingerprint(), neg.fingerprint());
    }
}
