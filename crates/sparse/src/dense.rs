//! Small dense matrices with a dense Cholesky factorization.
//!
//! This module exists as a *test oracle* for the sparse stack: exact
//! inverses, exact traces and exact condition numbers on problems small
//! enough to afford O(n³) work. It is not intended for large matrices.

use std::ops::{Index, IndexMut};

use crate::error::SparseError;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use tracered_sparse::DenseMatrix;
///
/// let mut a = DenseMatrix::zeros(2, 2);
/// a[(0, 0)] = 4.0;
/// a[(1, 1)] = 9.0;
/// let chol = a.cholesky().unwrap();
/// assert_eq!(chol.solve(&[4.0, 9.0]), vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows` × `ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// An `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if
    /// `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self, SparseError> {
        if data.len() != nrows * ncols {
            return Err(SparseError::DimensionMismatch {
                expected: nrows * ncols,
                found: data.len(),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            y[r] = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.nrows.min(self.ncols)).map(|i| self[(i, i)]).sum()
    }

    /// Dense Cholesky factorization `A = L Lᵀ` of a symmetric positive
    /// definite matrix. Only the lower triangle of `self` is read.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs and
    /// [`SparseError::NotPositiveDefinite`] if a pivot is not positive.
    pub fn cholesky(&self) -> Result<DenseCholesky, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare { nrows: self.nrows, ncols: self.ncols });
        }
        let n = self.nrows;
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite { column: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(DenseCholesky { l })
    }

    /// Inverse via Cholesky; the matrix must be symmetric positive definite.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DenseMatrix::cholesky`].
    pub fn spd_inverse(&self) -> Result<DenseMatrix, SparseError> {
        let chol = self.cholesky()?;
        let n = self.nrows;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = chol.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Largest eigenvalue of a symmetric matrix via power iteration, used by
    /// test oracles. Deterministic start vector; `iters` iterations.
    pub fn sym_lambda_max(&self, iters: usize) -> f64 {
        assert_eq!(self.nrows, self.ncols, "matrix must be square");
        let n = self.nrows;
        if n == 0 {
            return 0.0;
        }
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.001).collect();
        let mut lambda = 0.0;
        for _ in 0..iters {
            let w = self.matvec(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                return 0.0;
            }
            lambda = v.iter().zip(w.iter()).map(|(a, b)| a * b).sum::<f64>()
                / v.iter().map(|x| x * x).sum::<f64>();
            v = w.iter().map(|x| x / norm).collect();
        }
        lambda
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

/// Dense Cholesky factor `L` with triangular solves.
#[derive(Debug, Clone)]
pub struct DenseCholesky {
    l: DenseMatrix,
}

impl DenseCholesky {
    /// The lower-triangular factor.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut x = b.to_vec();
        // Forward solve L y = b.
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.l[(i, k)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        // Backward solve Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_row_major(3, 3, vec![4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0])
            .unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let llt = chol.l().matmul(&chol.l().transpose());
        for r in 0..3 {
            for c in 0..3 {
                assert!((llt[(r, c)] - a[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_is_exact() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_is_rejected() {
        let mut a = DenseMatrix::identity(2);
        a[(1, 1)] = -1.0;
        assert!(matches!(a.cholesky(), Err(SparseError::NotPositiveDefinite { column: 1 })));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = a.spd_inverse().unwrap();
        let prod = a.matmul(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod[(r, c)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trace_sums_diagonal() {
        assert_eq!(spd3().trace(), 12.0);
    }

    #[test]
    fn lambda_max_of_diagonal() {
        let mut a = DenseMatrix::identity(3);
        a[(0, 0)] = 7.0;
        let l = a.sym_lambda_max(200);
        assert!((l - 7.0).abs() < 1e-6);
    }

    #[test]
    fn from_row_major_validates_len() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0]).is_err());
    }
}
