//! Deterministic fault injection for the `tracered` numeric stack.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This crate provides a seed-driven [`FaultPlan`] that corrupts
//! inputs in the ways the resilience layer must survive:
//!
//! - non-finite matrix entries (NaN / ±Inf), caught by
//!   [`tracered_sparse::scan_non_finite`];
//! - poisoned pivots (a strongly negative diagonal entry), which force
//!   `NotPositiveDefinite` breakdowns and exercise the
//!   [`tracered_sparse::factorize_regularized`] boost ladder;
//! - non-finite right-hand-side and source-scale entries, which must
//!   surface as classified terminations, never as garbage answers;
//! - panicking pool jobs, which the `tracered_par` work-stealing pool
//!   must contain without poisoning its workers;
//! - outage faults for the contingency layer: corrupted rank-1
//!   update vectors and pivot-poisoning downdate spikes, which the
//!   incremental Cholesky update must reject typed with the factor
//!   restored bit-exactly;
//! - request-level faults ([`RequestFault`]) for the solver-service
//!   aggregator: NaN right-hand sides, wrong-length vectors, stale
//!   epoch pins and panicking request closures, each of which must fail
//!   exactly one request while its batch-mates complete.
//!
//! Every choice (which entry, which value, which job) is drawn from a
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c) stream, so a fault
//! campaign is exactly reproducible from its seed: a failure seen in CI
//! replays locally with the same plan. The chaos suite in
//! `tests/chaos.rs` drives every injected fault through the public APIs
//! and asserts the contract of the resilience layer: **a typed error or a
//! recorded recovery — never a panic, never a silently wrong answer.**

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use tracered_sparse::CscMatrix;

/// What an injected matrix entry was set to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultValue {
    /// `f64::NAN`.
    Nan,
    /// `f64::INFINITY`.
    PosInf,
    /// `f64::NEG_INFINITY`.
    NegInf,
}

impl FaultValue {
    /// The concrete floating-point payload.
    pub fn as_f64(self) -> f64 {
        match self {
            FaultValue::Nan => f64::NAN,
            FaultValue::PosInf => f64::INFINITY,
            FaultValue::NegInf => f64::NEG_INFINITY,
        }
    }
}

/// One recorded corruption of a stored matrix entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Row of the corrupted entry.
    pub row: usize,
    /// Column of the corrupted entry.
    pub col: usize,
    /// What the entry was replaced with.
    pub value: FaultValue,
}

/// A deterministic, seed-driven fault campaign.
///
/// All methods take `&mut self`: each draw advances the internal
/// splitmix64 stream, so a fixed seed yields a fixed fault sequence
/// regardless of platform or thread count.
///
/// ```
/// use tracered_fi::FaultPlan;
/// use tracered_sparse::CscMatrix;
///
/// let a = CscMatrix::identity(4);
/// let (bad, faults) = FaultPlan::new(7).corrupt_matrix_entries(&a, 2);
/// assert_eq!(faults.len(), 2);
/// for f in &faults {
///     assert!(!bad.get(f.row, f.col).is_finite());
/// }
/// // Same seed, same plan: the campaign replays exactly.
/// let (_, again) = FaultPlan::new(7).corrupt_matrix_entries(&a, 2);
/// assert_eq!(faults, again);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    state: u64,
}

impl FaultPlan {
    /// Creates a plan for `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, state: seed }
    }

    /// The seed this plan was created with (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw splitmix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound > 0`).
    fn next_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "next_index needs a non-empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Next fault payload, cycling through NaN and the two infinities.
    fn next_value(&mut self) -> FaultValue {
        match self.next_u64() % 3 {
            0 => FaultValue::Nan,
            1 => FaultValue::PosInf,
            _ => FaultValue::NegInf,
        }
    }

    /// Replaces up to `count` distinct stored entries of `a` with
    /// non-finite values. Returns the corrupted copy and the injection
    /// log (empty when `a` has no stored entries).
    pub fn corrupt_matrix_entries(
        &mut self,
        a: &CscMatrix,
        count: usize,
    ) -> (CscMatrix, Vec<Injection>) {
        let nnz = a.nnz();
        let mut out = a.clone();
        let mut injections = Vec::new();
        if nnz == 0 || count == 0 {
            return (out, injections);
        }
        let count = count.min(nnz);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < count {
            chosen.insert(self.next_index(nnz));
        }
        let colptr = a.colptr().to_vec();
        for &k in &chosen {
            let value = self.next_value();
            out.values_mut()[k] = value.as_f64();
            // Storage is column-major: recover (row, col) from the flat
            // index for the injection log.
            let col = colptr.partition_point(|&p| p <= k) - 1;
            injections.push(Injection { row: a.rowidx()[k], col, value });
        }
        (out, injections)
    }

    /// Makes one randomly chosen diagonal entry of `a` strongly negative,
    /// guaranteeing the matrix is not positive definite. Returns the
    /// corrupted copy and the poisoned column.
    ///
    /// The poisoned value is `-(|old| + mean |diag| + 1)`: large enough
    /// that no rounding accident can rescue the pivot, finite so the
    /// failure is a classified `NotPositiveDefinite`, not a NaN.
    ///
    /// # Panics
    ///
    /// Panics if `a` has a zero dimension or a structurally missing
    /// diagonal entry (SPD inputs always store their diagonal).
    pub fn poison_pivot(&mut self, a: &CscMatrix) -> (CscMatrix, usize) {
        let n = a.ncols().min(a.nrows());
        assert!(n > 0, "cannot poison an empty matrix");
        let target = self.next_index(n);
        let diag = a.diagonal();
        let scale = diag.iter().map(|d| d.abs()).sum::<f64>() / n as f64;
        let (rows, _) = a.col(target);
        let offset = rows.iter().position(|&r| r == target).expect("diagonal entry must be stored");
        let k = a.colptr()[target] + offset;
        let mut out = a.clone();
        let old = out.values_mut()[k];
        out.values_mut()[k] = -(old.abs() + scale + 1.0);
        (out, target)
    }

    /// Sets one entry of `b` to NaN. Returns the corrupted copy and the
    /// index hit.
    ///
    /// # Panics
    ///
    /// Panics if `b` is empty.
    pub fn nan_rhs_entry(&mut self, b: &[f64]) -> (Vec<f64>, usize) {
        assert!(!b.is_empty(), "cannot corrupt an empty vector");
        let idx = self.next_index(b.len());
        let mut out = b.to_vec();
        out[idx] = f64::NAN;
        (out, idx)
    }

    /// Sets one entry of a source-scale vector to a non-finite value.
    /// Returns the corrupted copy and the index hit.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty.
    pub fn corrupt_scales(&mut self, scales: &[f64]) -> (Vec<f64>, usize) {
        assert!(!scales.is_empty(), "cannot corrupt an empty vector");
        let idx = self.next_index(scales.len());
        let mut out = scales.to_vec();
        out[idx] = self.next_value().as_f64();
        (out, idx)
    }

    /// Sets one entry of a rank-1 update/downdate vector to a
    /// non-finite value. [`tracered_sparse`]'s incremental Cholesky
    /// update must reject the vector with a typed error *before*
    /// touching the factor — the chaos suite asserts the factor still
    /// solves bit-identically afterwards. Returns the corrupted copy
    /// and the index hit.
    ///
    /// # Panics
    ///
    /// Panics if `w` is empty.
    pub fn corrupt_update_vector(&mut self, w: &[f64]) -> (Vec<f64>, usize) {
        assert!(!w.is_empty(), "cannot corrupt an empty vector");
        let idx = self.next_index(w.len());
        let mut out = w.to_vec();
        out[idx] = self.next_value().as_f64();
        (out, idx)
    }

    /// Builds a downdate vector that poisons one pivot of `a`: a single
    /// spike `w[j] = sqrt(4·|a_jj|)` at a randomly chosen column, so
    /// `A − wwᵀ` has a strongly negative diagonal and any hyperbolic
    /// downdate of a factor of `A` must lose positive definiteness at
    /// (or before) column `j`. The loss must surface as a typed
    /// `NotPositiveDefinite` with the factor restored bit-exactly —
    /// never as a panic or a corrupted factor. Returns the vector and
    /// the poisoned column.
    ///
    /// # Panics
    ///
    /// Panics if `a` has a zero dimension.
    pub fn poison_downdate(&mut self, a: &CscMatrix) -> (Vec<f64>, usize) {
        let n = a.ncols().min(a.nrows());
        assert!(n > 0, "cannot poison an empty matrix");
        let target = self.next_index(n);
        let mut w = vec![0.0; a.ncols()];
        w[target] = (4.0 * a.get(target, target).abs().max(1.0)).sqrt();
        (w, target)
    }

    /// Uniform slot pick in `0..total`, for planting one poisoned
    /// element in a batch whose element type this crate does not know
    /// (e.g. a contingency outage list). Keeps mid-batch injection
    /// seed-driven like every other campaign choice.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn pick_slot(&mut self, total: usize) -> usize {
        assert!(total > 0, "cannot pick from an empty batch");
        self.next_index(total)
    }

    /// Chooses which of `total` pool jobs should panic: a deterministic
    /// non-empty subset (roughly one in four). Returns a mask.
    pub fn panic_jobs(&mut self, total: usize) -> Vec<bool> {
        let mut mask = vec![false; total];
        if total == 0 {
            return mask;
        }
        for flag in mask.iter_mut() {
            *flag = self.next_u64().is_multiple_of(4);
        }
        if !mask.iter().any(|&f| f) {
            let forced = self.next_index(total);
            mask[forced] = true;
        }
        mask
    }

    /// Assigns request-level faults to `total` solver-service requests:
    /// roughly one request in four draws one of the [`RequestFault`]
    /// kinds, and at least one fault is always injected (when
    /// `total > 0`). Deterministic per seed, like every other injector.
    pub fn request_faults(&mut self, total: usize) -> Vec<Option<RequestFault>> {
        let mut plan = vec![None; total];
        if total == 0 {
            return plan;
        }
        for slot in plan.iter_mut() {
            if self.next_u64().is_multiple_of(4) {
                *slot = Some(self.next_request_fault());
            }
        }
        if !plan.iter().any(Option::is_some) {
            let forced = self.next_index(total);
            plan[forced] = Some(self.next_request_fault());
        }
        plan
    }

    /// Next request-fault kind, cycling uniformly over the variants.
    fn next_request_fault(&mut self) -> RequestFault {
        match self.next_u64() % 4 {
            0 => RequestFault::NanRhs,
            1 => RequestFault::WrongLength,
            2 => RequestFault::StaleEpoch,
            _ => RequestFault::PanicClosure,
        }
    }
}

/// A request-level fault for the solver-service chaos suite. Each kind
/// must fail **exactly one** request with a typed error while its
/// batch-mates complete and the aggregator keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RequestFault {
    /// Replace one right-hand-side entry with NaN.
    NanRhs,
    /// Truncate the right-hand side below the system dimension.
    WrongLength,
    /// Pin the request to an epoch that is no longer current.
    StaleEpoch,
    /// Make the deferred right-hand-side closure panic.
    PanicClosure,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn laplacian_like(n: usize) -> CscMatrix {
        // Tridiagonal SPD matrix, full symmetric storage.
        let mut coo = tracered_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + i as f64 * 0.1).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csc()
    }

    #[test]
    fn same_seed_same_campaign() {
        let a = laplacian_like(12);
        let mut p1 = FaultPlan::new(42);
        let mut p2 = FaultPlan::new(42);
        assert_eq!(p1.corrupt_matrix_entries(&a, 3).1, p2.corrupt_matrix_entries(&a, 3).1);
        assert_eq!(p1.poison_pivot(&a).1, p2.poison_pivot(&a).1);
        assert_eq!(p1.nan_rhs_entry(&[1.0; 9]).1, p2.nan_rhs_entry(&[1.0; 9]).1);
        assert_eq!(p1.corrupt_update_vector(&[0.5; 7]), p2.corrupt_update_vector(&[0.5; 7]));
        assert_eq!(p1.poison_downdate(&a), p2.poison_downdate(&a));
        assert_eq!(p1.pick_slot(13), p2.pick_slot(13));
        assert_eq!(p1.panic_jobs(16), p2.panic_jobs(16));
        assert_eq!(p1.request_faults(24), p2.request_faults(24));
    }

    #[test]
    fn request_faults_always_inject_at_least_one() {
        for seed in 0..32u64 {
            let plan = FaultPlan::new(seed).request_faults(8);
            assert_eq!(plan.len(), 8);
            assert!(plan.iter().any(Option::is_some), "seed {seed} injected nothing");
        }
        assert!(FaultPlan::new(1).request_faults(0).is_empty());
        assert!(FaultPlan::new(1).request_faults(1)[0].is_some(), "a lone request is forced");
    }

    #[test]
    fn different_seeds_diverge() {
        let hits_a: Vec<usize> = (0..8).map(|_| FaultPlan::new(1).next_index(1000)).collect();
        let hits_b: Vec<usize> = (0..8).map(|_| FaultPlan::new(2).next_index(1000)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn corrupt_matrix_reports_accurate_coordinates() {
        let a = laplacian_like(10);
        let (bad, faults) = FaultPlan::new(7).corrupt_matrix_entries(&a, 5);
        assert_eq!(faults.len(), 5);
        for f in &faults {
            let got = bad.get(f.row, f.col);
            match f.value {
                FaultValue::Nan => assert!(got.is_nan()),
                FaultValue::PosInf => assert_eq!(got, f64::INFINITY),
                FaultValue::NegInf => assert_eq!(got, f64::NEG_INFINITY),
            }
        }
        // The original is untouched.
        assert!(a.values().iter().all(|v| v.is_finite()));
        // Count of non-finite stored values matches the log.
        let hit = bad.values().iter().filter(|v| !v.is_finite()).count();
        assert_eq!(hit, 5);
    }

    #[test]
    fn corrupt_matrix_clamps_to_nnz() {
        let a = CscMatrix::identity(3);
        let (_, faults) = FaultPlan::new(3).corrupt_matrix_entries(&a, 100);
        assert_eq!(faults.len(), 3);
    }

    #[test]
    fn poisoned_pivot_defeats_plain_cholesky() {
        use tracered_sparse::{order::Ordering, CholeskyFactor, SparseError};
        let a = laplacian_like(16);
        CholeskyFactor::factorize(&a, Ordering::MinDegree).expect("healthy matrix factors");
        let (bad, col) = FaultPlan::new(11).poison_pivot(&a);
        assert!(bad.get(col, col) < 0.0);
        assert!(matches!(
            CholeskyFactor::factorize(&bad, Ordering::MinDegree),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn poison_downdate_guarantees_an_indefinite_perturbation() {
        let a = laplacian_like(12);
        let (w, col) = FaultPlan::new(17).poison_downdate(&a);
        // (A − wwᵀ) has a strongly negative diagonal at `col`.
        assert!(a.get(col, col) - w[col] * w[col] < 0.0);
        assert!(w.iter().enumerate().all(|(i, &v)| i == col || v == 0.0));
    }

    #[test]
    fn panic_jobs_always_selects_at_least_one() {
        for seed in 0..32 {
            let mask = FaultPlan::new(seed).panic_jobs(6);
            assert_eq!(mask.len(), 6);
            assert!(mask.iter().any(|&f| f), "seed {seed} selected no panicking job");
        }
        assert!(FaultPlan::new(0).panic_jobs(0).is_empty());
    }

    #[test]
    fn scale_corruption_is_non_finite() {
        let (bad, idx) = FaultPlan::new(5).corrupt_scales(&[1.0, 0.5, 0.25]);
        assert!(!bad[idx].is_finite());
        assert_eq!(bad.iter().filter(|s| !s.is_finite()).count(), 1);
    }
}
