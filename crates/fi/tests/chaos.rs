//! The chaos suite: every fault a [`FaultPlan`] can inject, driven
//! through the public APIs of the stack. The contract under test is the
//! resilience layer's promise — **a typed error or a recorded recovery,
//! never a panic, never a silently wrong answer**.
//!
//! Runs are deterministic: all faults derive from fixed seeds, so any
//! failure replays exactly. CI exercises this suite under
//! `TRACERED_THREADS=1` and `TRACERED_THREADS=4`.

use std::sync::Arc;
use tracered_core::{sparsify, sparsify_partitioned, Method, PartitionedConfig, SparsifyConfig};

use tracered_fi::{FaultPlan, RequestFault};
use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_graph::laplacian::{laplacian, ShiftPolicy};
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    simulate_pcg_batch, simulate_pcg_batch_outcomes, ScenarioFailureKind, SourceScenario,
    TransientConfig,
};
use tracered_service::{ContextSpec, ServiceConfig, ServiceError, ServiceRequest, SolverService};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_solver::{robust_solve, RobustSolveConfig, TerminationReason};
use tracered_sparse::order::Ordering;
use tracered_sparse::{
    factorize_regularized, scan_non_finite, BoostSchedule, CholeskyFactor, CscMatrix, SparseError,
};

/// A well-conditioned SPD test matrix: shifted 2-D grid Laplacian.
fn healthy_matrix(side: usize) -> CscMatrix {
    let g = grid2d(side, side, WeightProfile::Unit, 5);
    laplacian(&g, ShiftPolicy::Uniform(0.5)).expect("valid shift")
}

#[test]
fn non_finite_matrix_yields_typed_error_not_panic() {
    let a = healthy_matrix(8);
    let mut plan = FaultPlan::new(101);
    let (bad, faults) = plan.corrupt_matrix_entries(&a, 4);
    assert!(!faults.is_empty());
    // The cheap scan names a corrupted coordinate...
    let err = scan_non_finite(&bad).expect_err("corruption must be detected");
    match err {
        SparseError::NonFiniteValue { row, col } => {
            assert!(!bad.get(row, col).is_finite());
        }
        other => panic!("expected NonFiniteValue, got {other:?}"),
    }
    // ...and every resilient entry point refuses the matrix up front.
    assert!(matches!(
        factorize_regularized(&bad, Ordering::MinDegree, &BoostSchedule::default()),
        Err(SparseError::NonFiniteValue { .. })
    ));
    let b = vec![1.0; bad.ncols()];
    assert!(matches!(
        robust_solve(&bad, &b, &a, &RobustSolveConfig::default()),
        Err(SparseError::NonFiniteValue { .. })
    ));
}

#[test]
fn poisoned_pivot_recovers_through_the_boost_ladder() {
    let a = healthy_matrix(8);
    let (bad, col) = FaultPlan::new(202).poison_pivot(&a);
    // The plain factorization breaks down...
    assert!(matches!(
        CholeskyFactor::factorize(&bad, Ordering::MinDegree),
        Err(SparseError::NotPositiveDefinite { .. })
    ));
    // ...the regularized one recovers and reports the shift it needed.
    let rf = factorize_regularized(&bad, Ordering::MinDegree, &BoostSchedule::default())
        .expect("ladder must rescue a finite indefinite matrix");
    assert!(rf.applied_shift > 0.0, "recovery must report its shift");
    assert!(rf.attempts > 1);
    // The factor solves the boosted system accurately.
    let boosted = bad.add_diagonal(&vec![rf.applied_shift; bad.ncols()]).expect("square matrix");
    let b = vec![1.0; bad.ncols()];
    let x = rf.factor.solve(&b);
    assert!(boosted.residual_inf_norm(&x, &b) < 1e-8, "poisoned column {col}");
}

#[test]
fn robust_solve_with_poisoned_preconditioner_matches_fault_free_accuracy() {
    let a = healthy_matrix(8);
    let b: Vec<f64> = (0..a.ncols()).map(|i| (i % 7) as f64 - 3.0).collect();
    let cfg = RobustSolveConfig::default();
    let clean = robust_solve(&a, &b, &a, &cfg).expect("fault-free solve");
    assert_eq!(clean.reason, TerminationReason::Converged);
    // Poison the preconditioner matrix: the chain must still converge,
    // with the recovery visible in the attempt log.
    let (bad_pre, _) = FaultPlan::new(303).poison_pivot(&a);
    let sol = robust_solve(&a, &b, &bad_pre, &cfg).expect("escalation must absorb the fault");
    assert_eq!(sol.reason, TerminationReason::Converged);
    assert!(
        sol.attempts.iter().any(|at| at.applied_shift > 0.0),
        "the boost that rescued the preconditioner must be recorded"
    );
    // Recovered accuracy within an order of magnitude of fault-free.
    assert!(sol.rel_residual <= clean.rel_residual.max(cfg.pcg.rel_tolerance) * 10.0);
}

#[test]
fn nan_rhs_is_classified_not_propagated() {
    let a = healthy_matrix(6);
    let b = vec![1.0; a.ncols()];
    let (bad_b, idx) = FaultPlan::new(404).nan_rhs_entry(&b);
    assert!(bad_b[idx].is_nan());
    // The raw iterative kernel classifies the breakdown...
    let pre = CholPreconditioner::from_matrix(&a).expect("SPD matrix");
    let sol = pcg(&a, &bad_b, &pre, &PcgOptions::default());
    assert!(!sol.converged);
    assert_eq!(sol.reason, TerminationReason::NonFinite);
    // ...and the robust entry point rejects the input with a typed error
    // naming the bad entry.
    match robust_solve(&a, &bad_b, &a, &RobustSolveConfig::default()) {
        Err(SparseError::InvalidValue { what }) => {
            assert!(what.contains(&format!("index {idx}")), "got: {what}");
        }
        other => panic!("expected InvalidValue, got {other:?}"),
    }
}

#[test]
fn panicking_pool_jobs_do_not_poison_the_pool() {
    let mask = FaultPlan::new(505).panic_jobs(12);
    let jobs: Vec<(usize, bool)> = mask.iter().copied().enumerate().collect();
    let result = std::panic::catch_unwind(|| {
        tracered_par::par_jobs(jobs, 4, |(i, poisoned)| {
            if poisoned {
                panic!("injected fault in job {i}");
            }
        });
    });
    assert!(result.is_err(), "the injected panic must propagate to the caller");
    // The pool survives: later regions run to completion with correct
    // results.
    let mut outputs = vec![0usize; 64];
    let jobs: Vec<(usize, &mut usize)> = outputs.iter_mut().enumerate().collect();
    tracered_par::par_jobs(jobs, 4, |(i, out)| *out = i * i);
    for (i, &o) in outputs.iter().enumerate() {
        assert_eq!(o, i * i);
    }
}

#[test]
fn sparsifier_boost_recovery_is_visible_in_iteration_stats() {
    // Acceptance criterion: a forced-indefinite factorization inside the
    // sparsifier recovers via the configured ladder and surfaces the
    // applied shift in IterationStats.
    let g = grid2d(10, 10, WeightProfile::Unit, 3);
    let fragile = SparsifyConfig::new(Method::JlResistance).shift(ShiftPolicy::None);
    assert!(sparsify(&g, &fragile).is_err(), "the fault lever must fire");
    let boosted = fragile.clone().pivot_boost(Some(BoostSchedule::default()));
    let sp = sparsify(&g, &boosted).expect("boost ladder must rescue the run");
    assert!(sp.report().iterations.iter().any(|it| it.applied_shift > 0.0));
    assert!(sp.as_graph(&g).is_connected());
}

#[test]
fn partitioned_runs_degrade_gracefully_instead_of_aborting() {
    let g = grid2d(12, 10, WeightProfile::Unit, 2);
    let cfg = PartitionedConfig::new(4)
        .base(SparsifyConfig::new(Method::JlResistance).shift(ShiftPolicy::None));
    let psp = sparsify_partitioned(&g, &cfg).expect("degraded run must still complete");
    assert!(psp.partition_report().degraded_partitions > 0);
    assert!(psp.sparsifier().report().degraded_fallbacks > 0);
    assert!(psp.sparsifier().as_graph(&g).is_connected());
}

#[test]
fn transient_batch_quarantines_corrupted_scenarios() {
    let pg = synthesize(&SynthConfig { mesh: 8, source_fraction: 0.2, ..Default::default() });
    let cfg = TransientConfig { t_end: 5e-10, pcg_tol: 1e-8, ..Default::default() };
    let pre =
        CholPreconditioner::from_matrix(&pg.conductance_matrix()).expect("grounded grid is SPD");
    let m = pg.sources().len();
    let mut scenarios = vec![
        SourceScenario::nominal(),
        SourceScenario::uniform(0.5, m),
        SourceScenario::uniform(1.5, m),
    ];
    // Corrupt the middle scenario's scales deterministically.
    let scales = vec![0.5; m];
    let (bad, _) = FaultPlan::new(606).corrupt_scales(&scales);
    scenarios[1] = SourceScenario::per_source(bad);

    let outcomes = simulate_pcg_batch_outcomes(&pg, &cfg, &pre, &[0], &scenarios)
        .expect("shared machinery is healthy");
    let fail = outcomes[1].failure().expect("corrupted scenario must fail");
    assert_eq!(fail.scenario, 1);
    assert!(matches!(fail.kind, ScenarioFailureKind::InvalidScale { .. }));
    // Survivors are bit-identical to a batch that never saw the fault.
    let clean =
        simulate_pcg_batch(&pg, &cfg, &pre, &[0], &[scenarios[0].clone(), scenarios[2].clone()])
            .expect("clean batch");
    for (out, reference) in [&outcomes[0], &outcomes[2]].iter().zip(clean.iter()) {
        let r = out.result().expect("healthy scenario must complete");
        assert_eq!(r.times, reference.times);
        for (ta, tb) in r.probes.iter().zip(reference.probes.iter()) {
            assert_eq!(ta, tb, "survivor waveforms must match the fault-free run");
        }
    }
}

#[test]
fn fault_campaign_sweep_never_panics() {
    // A broad deterministic sweep: many seeds, every injector, every
    // resilient entry point. Success is the absence of panics plus a
    // classified outcome for every run.
    let a = healthy_matrix(6);
    let b = vec![1.0; a.ncols()];
    for seed in 0..12u64 {
        let mut plan = FaultPlan::new(seed);
        let (bad, _) = plan.corrupt_matrix_entries(&a, 1 + (seed as usize % 3));
        match robust_solve(&bad, &b, &a, &RobustSolveConfig::default()) {
            Ok(sol) => assert!(sol.rel_residual.is_finite()),
            Err(SparseError::NonFiniteValue { .. }) => {}
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
        // A poisoned PRECONDITIONER on a healthy system must be absorbed
        // outright...
        let (bad_pre, _) = plan.poison_pivot(&a);
        let sol = robust_solve(&a, &b, &bad_pre, &RobustSolveConfig::default())
            .expect("healthy system with a broken preconditioner must solve");
        assert_eq!(sol.reason, TerminationReason::Converged, "seed {seed}");
        // ...while a genuinely indefinite SYSTEM ends in a classified,
        // finite-diagnostics outcome — never a panic, never a fake
        // convergence claim.
        let sol = robust_solve(&bad_pre, &b, &bad_pre, &RobustSolveConfig::default())
            .expect("classified outcome, not an abort");
        assert!(sol.rel_residual.is_finite(), "seed {seed}");
        assert!(!sol.attempts.is_empty());
        if sol.reason == TerminationReason::Converged {
            let tol = RobustSolveConfig::default().pcg.rel_tolerance;
            assert!(sol.rel_residual <= tol * 10.0, "seed {seed}: fake convergence");
        }
    }
}

/// Deterministic healthy right-hand side for the service chaos runs.
fn service_rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
            ((h % 1000) as f64) / 500.0 - 1.0
        })
        .collect()
}

#[test]
fn service_request_chaos_fails_only_the_faulted_requests() {
    // Request-level chaos against the aggregation service: every
    // injected fault must come back as a typed per-request error, every
    // healthy batch-mate must complete, and the aggregator must keep
    // serving afterwards — it never wedges, it never dies.
    let g = grid2d(10, 10, WeightProfile::Unit, 4);
    let a = Arc::new(laplacian(&g, ShiftPolicy::Uniform(0.05)).expect("valid shift"));
    let a2 = Arc::new(laplacian(&g, ShiftPolicy::Uniform(0.25)).expect("valid shift"));
    let n = a.ncols();

    let svc = SolverService::start(ServiceConfig { max_batch_width: 4, ..Default::default() });
    let stale_epoch = svc.publish(ContextSpec::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
    let current = svc.publish(ContextSpec::new(Arc::clone(&a2), Arc::clone(&a2))).unwrap();
    let client = svc.client();

    let mut plan = FaultPlan::new(4242);
    let faults = plan.request_faults(24);
    assert!(faults.iter().any(Option::is_some), "the campaign must inject something");
    let reqs: Vec<ServiceRequest> = faults
        .iter()
        .enumerate()
        .map(|(i, fault)| {
            let b = service_rhs(n, i as u64);
            match fault {
                None => ServiceRequest::pcg(b, 1e-8),
                Some(RequestFault::NanRhs) => {
                    let (bad, _) = plan.nan_rhs_entry(&b);
                    ServiceRequest::pcg(bad, 1e-8)
                }
                Some(RequestFault::WrongLength) => ServiceRequest::pcg(b[..n - 1].to_vec(), 1e-8),
                Some(RequestFault::StaleEpoch) => ServiceRequest::pcg(b, 1e-8).pinned(stale_epoch),
                Some(RequestFault::PanicClosure) => ServiceRequest::pcg_deferred(
                    move || panic!("injected request fault in request {i}"),
                    1e-8,
                ),
                Some(other) => panic!("unknown fault kind {other:?}"),
            }
        })
        .collect();

    let results: Vec<_> = client.submit_many(reqs).into_iter().map(|t| t.wait()).collect();
    let mut healthy = 0u64;
    let mut isolated = 0u64;
    let mut stale = 0u64;
    for (i, (result, fault)) in results.iter().zip(&faults).enumerate() {
        match fault {
            None => {
                let out = result.as_ref().unwrap_or_else(|e| {
                    panic!("healthy request {i} failed alongside injected faults: {e}")
                });
                let out = out.clone().into_solve().expect("solve response");
                assert!(out.converged, "request {i}");
                assert_eq!(out.epoch, current, "request {i} must run on the current epoch");
                healthy += 1;
            }
            Some(RequestFault::NanRhs) => {
                assert!(
                    matches!(result, Err(ServiceError::NonFiniteRhs { .. })),
                    "request {i}: {result:?}"
                );
                isolated += 1;
            }
            Some(RequestFault::WrongLength) => {
                assert!(
                    matches!(result, Err(ServiceError::WrongLength { expected, found })
                        if *expected == n && *found == n - 1),
                    "request {i}: {result:?}"
                );
                isolated += 1;
            }
            Some(RequestFault::StaleEpoch) => {
                assert!(
                    matches!(result, Err(ServiceError::StaleEpoch { pinned, current: c })
                        if *pinned == stale_epoch && *c == current),
                    "request {i}: {result:?}"
                );
                stale += 1;
            }
            Some(RequestFault::PanicClosure) => {
                assert!(
                    matches!(result, Err(ServiceError::RequestPanicked)),
                    "request {i}: {result:?}"
                );
                isolated += 1;
            }
            Some(other) => panic!("unknown fault kind {other:?}"),
        }
    }

    // The aggregator survived the whole campaign and still serves.
    let after = client
        .solve(ServiceRequest::pcg(service_rhs(n, 999), 1e-8))
        .expect("service must keep serving after the chaos campaign")
        .into_solve()
        .expect("solve response");
    assert!(after.converged);

    let m = svc.metrics();
    assert_eq!(m.completed, healthy + 1);
    assert_eq!(m.failed, isolated + stale);
    assert_eq!(m.faults_isolated, isolated);
    assert_eq!(m.stale_rejections, stale);
}

#[test]
fn service_chaos_campaign_sweep_is_deterministic_and_panic_free() {
    // Many seeds, the same contract: typed errors for the injected
    // faults, completions for everything else, and a live aggregator at
    // the end of every campaign.
    let g = grid2d(8, 8, WeightProfile::Unit, 4);
    let a = Arc::new(laplacian(&g, ShiftPolicy::Uniform(0.1)).expect("valid shift"));
    let n = a.ncols();
    for seed in 0..6u64 {
        let svc = SolverService::start(ServiceConfig { max_batch_width: 3, ..Default::default() });
        let old = svc.publish(ContextSpec::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let cur = svc.publish(ContextSpec::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert_ne!(old, cur, "re-publishing must advance the epoch");
        let client = svc.client();
        let mut plan = FaultPlan::new(seed);
        let faults = plan.request_faults(9);
        let reqs: Vec<ServiceRequest> = faults
            .iter()
            .enumerate()
            .map(|(i, fault)| {
                let b = service_rhs(n, seed * 100 + i as u64);
                match fault {
                    None => ServiceRequest::pcg(b, 1e-8),
                    Some(RequestFault::NanRhs) => {
                        let (bad, _) = plan.nan_rhs_entry(&b);
                        ServiceRequest::pcg(bad, 1e-8)
                    }
                    Some(RequestFault::WrongLength) => {
                        ServiceRequest::pcg(b[..n / 2].to_vec(), 1e-8)
                    }
                    Some(RequestFault::StaleEpoch) => ServiceRequest::pcg(b, 1e-8).pinned(old),
                    Some(RequestFault::PanicClosure) => ServiceRequest::pcg_deferred(
                        move || panic!("chaos sweep fault, seed {seed}, request {i}"),
                        1e-8,
                    ),
                    Some(other) => panic!("unknown fault kind {other:?}"),
                }
            })
            .collect();
        for (i, (t, fault)) in client.submit_many(reqs).into_iter().zip(&faults).enumerate() {
            match t.wait() {
                Ok(resp) => {
                    assert!(fault.is_none(), "seed {seed}: faulted request {i} succeeded");
                    assert!(resp.into_solve().expect("solve response").converged);
                }
                Err(e) => {
                    assert!(fault.is_some(), "seed {seed}: healthy request {i} failed: {e}");
                }
            }
        }
        assert!(
            client.solve(ServiceRequest::pcg(service_rhs(n, 7), 1e-8)).is_ok(),
            "seed {seed}: aggregator wedged"
        );
    }
}

/// Bitwise-comparable solve of a factor against a fixed probe RHS.
fn solve_bits(factor: &CholeskyFactor, n: usize) -> Vec<u64> {
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    factor.solve(&b).iter().map(|x| x.to_bits()).collect()
}

#[test]
fn corrupted_update_vector_is_rejected_and_the_factor_survives() {
    let a = healthy_matrix(8);
    let n = a.ncols();
    let mut factor = CholeskyFactor::factorize(&a, Ordering::MinDegree).expect("healthy matrix");
    let before = solve_bits(&factor, n);

    // A healthy edge-shaped rank-1 vector, then the fault campaign
    // corrupts one entry to a non-finite value.
    let mut w = vec![0.0; n];
    w[3] = 0.5;
    w[12] = -0.5;
    let mut plan = FaultPlan::new(303);
    let (bad_w, idx) = plan.corrupt_update_vector(&w);
    assert!(!bad_w[idx].is_finite());

    // Both directions reject typed, before touching the factor.
    assert!(matches!(factor.update(&bad_w), Err(SparseError::InvalidValue { .. })));
    assert!(matches!(factor.downdate(&bad_w), Err(SparseError::InvalidValue { .. })));
    assert_eq!(factor.pending_updates(), 0, "a rejected vector must not be journaled");
    assert_eq!(solve_bits(&factor, n), before, "the factor must be bit-identical");

    // Recovery: the healthy vector still applies and reverts cleanly.
    factor.update(&w).expect("healthy update applies after the fault");
    factor.downdate(&w).expect("journaled revert");
    assert_eq!(solve_bits(&factor, n), before);
}

#[test]
fn poisoned_downdate_mid_sweep_is_quarantined_without_panic() {
    // Factor-level contract first: the poisoned pivot surfaces as a
    // typed breakdown and the factor is restored bit-exactly.
    let a = healthy_matrix(8);
    let n = a.ncols();
    let mut factor = CholeskyFactor::factorize(&a, Ordering::MinDegree).expect("healthy matrix");
    let before = solve_bits(&factor, n);
    let mut plan = FaultPlan::new(404);
    let (w, col) = plan.poison_downdate(&a);
    match factor.downdate(&w) {
        Err(SparseError::NotPositiveDefinite { .. }) => {}
        other => panic!("poisoned pivot at column {col} must break down typed, got {other:?}"),
    }
    assert_eq!(factor.pending_updates(), 0);
    assert_eq!(solve_bits(&factor, n), before, "failed downdate must restore the factor");

    // Sweep-level contract: one poisoned outage mid-batch is
    // quarantined as a classified failure and the survivors' answers
    // are bitwise identical to a sweep without it.
    use tracered_powergrid::{
        simulate_contingency_batch, ContingencyConfig, Outage, OutageFailureKind, OutageOutcome,
    };
    let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
    let healthy: Vec<Outage> = (0..4).map(|e| Outage::LineOutage { edge: e * 3 }).collect();
    let slot = plan.pick_slot(healthy.len() + 1);
    let mut outages = healthy.clone();
    outages.insert(slot, Outage::Reweight { edge: 1, new_weight: f64::NAN });

    let cfg = ContingencyConfig::default();
    let poisoned = simulate_contingency_batch(&pg, &outages, &[0, 5], &cfg, None)
        .expect("a poisoned outage must not abort the sweep");
    let clean = simulate_contingency_batch(&pg, &healthy, &[0, 5], &cfg, None).expect("clean");

    match &poisoned.outcomes[slot] {
        OutageOutcome::Failed(f) => {
            assert!(matches!(f.kind, OutageFailureKind::Invalid(_)), "got {:?}", f.kind);
        }
        other => panic!("slot {slot} must be quarantined, got {other:?}"),
    }
    let survivors: Vec<_> =
        poisoned.outcomes.iter().enumerate().filter(|&(i, _)| i != slot).map(|(_, o)| o).collect();
    for (sv, cl) in survivors.iter().zip(clean.outcomes.iter()) {
        let (sv, cl) = match (sv, cl) {
            (OutageOutcome::Completed(s), OutageOutcome::Completed(c)) => (s, c),
            other => panic!("survivor/clean outcome mismatch: {other:?}"),
        };
        let sb: Vec<u64> = sv.probes.iter().map(|p| p.to_bits()).collect();
        let cb: Vec<u64> = cl.probes.iter().map(|p| p.to_bits()).collect();
        assert_eq!(sb, cb, "survivors must be bitwise unaffected by the quarantined outage");
    }
    assert_eq!(poisoned.report.failures, 1);
    assert_eq!(poisoned.report.completed, clean.report.completed);
}
