//! GRASS-style spectral-perturbation criticality \[Feng, TCAD 2020\] —
//! the state-of-the-art baseline the paper compares against.
//!
//! GRASS ranks off-subgraph edges by the Laplacian quadratic form of a
//! dominant generalized eigenvector estimate (paper Eqs. 2–3): run a few
//! steps of the generalized power iteration `h_t = (L_S⁻¹ L_G)^t h_0`
//! from a random `h_0`, then score each candidate edge `(p, q)` by
//! `w_pq (h_tᵀ e_pq)² = w_pq (h_t[p] − h_t[q])²`. Larger scores mark
//! edges whose absence most damages spectral similarity. Averaging a few
//! independent probes de-noises the estimate.
//!
//! The implementation shares the spanning tree, the densification
//! schedule and the Cholesky machinery with the trace-reduction method,
//! so benchmark comparisons isolate the criticality metric itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tracered_graph::Graph;
use tracered_sparse::{CholeskyFactor, CscMatrix};

/// Scores `candidates` by GRASS spectral-perturbation criticality.
///
/// - `lg`: shifted Laplacian of the full graph;
/// - `factor`: Cholesky factorization of the current subgraph Laplacian;
/// - `power_steps`: `t` in `h_t = (L_S⁻¹ L_G)^t h_0` (≥ 1);
/// - `num_vectors`: number of independent probes to average;
/// - `rng`: probe source (seeded by the caller for determinism).
///
/// Returns one score per candidate, aligned with the input order.
///
/// # Panics
///
/// Panics if dimensions disagree or `power_steps == 0`.
pub fn grass_scores(
    g: &Graph,
    lg: &CscMatrix,
    factor: &CholeskyFactor,
    candidates: &[usize],
    power_steps: usize,
    num_vectors: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    grass_scores_threads(g, lg, factor, candidates, power_steps, num_vectors, rng, 1)
}

/// [`grass_scores`] with the probe evaluations fanned out over
/// `threads` workers.
///
/// The random ±1 probes are drawn serially (preserving the RNG stream),
/// then each probe's power iteration and candidate scoring run as an
/// independent work-stealing job with private `h`/`tmp` buffers. Probe
/// contributions are reduced in probe order, so results are
/// bit-identical to the serial path for every thread count.
///
/// # Panics
///
/// Same conditions as [`grass_scores`].
#[allow(clippy::too_many_arguments)]
pub fn grass_scores_threads(
    g: &Graph,
    lg: &CscMatrix,
    factor: &CholeskyFactor,
    candidates: &[usize],
    power_steps: usize,
    num_vectors: usize,
    rng: &mut StdRng,
    threads: usize,
) -> Vec<f64> {
    let n = g.num_nodes();
    assert_eq!(lg.ncols(), n, "Laplacian dimension must match the graph");
    assert_eq!(factor.n(), n, "factor dimension must match the graph");
    assert!(power_steps > 0, "at least one power step is required");
    let k = candidates.len();
    let mut scores = vec![0.0f64; k];
    if threads <= 1 {
        // Streaming serial path: draw-and-consume one probe at a time
        // in O(n) scratch, accumulating into `scores` in probe order.
        let mut h = vec![0.0f64; n];
        let mut tmp = vec![0.0f64; n];
        for _ in 0..num_vectors {
            draw_probe(&mut h, rng);
            power_iterate(lg, factor, power_steps, &mut h, &mut tmp);
            for (s, &eid) in scores.iter_mut().zip(candidates.iter()) {
                let e = g.edge(eid);
                let d = h[e.u] - h[e.v];
                *s += e.weight * d * d;
            }
        }
        return scores;
    }
    // Parallel path: draw every probe up front in the same serial stream
    // order, fan the probe evaluations out, then reduce in probe order —
    // the exact accumulation order of the serial loop above.
    let probes: Vec<Vec<f64>> = (0..num_vectors)
        .map(|_| {
            let mut h = vec![0.0f64; n];
            draw_probe(&mut h, rng);
            h
        })
        .collect();
    if k == 0 || num_vectors == 0 {
        return scores;
    }
    // One work item per probe: contributions[j*k..(j+1)*k] holds probe
    // j's per-candidate terms.
    let mut contributions = vec![0.0f64; num_vectors * k];
    tracered_par::par_chunks_mut_scratch(
        &mut contributions,
        k,
        threads,
        crate::workspace::vec_pair_factory(n),
        |ws, start, out| {
            let (h, tmp) = (&mut ws.a, &mut ws.b);
            let j = start / k;
            h.copy_from_slice(&probes[j]);
            power_iterate(lg, factor, power_steps, h, tmp);
            for (slot, &eid) in out.iter_mut().zip(candidates.iter()) {
                let e = g.edge(eid);
                let d = h[e.u] - h[e.v];
                *slot = e.weight * d * d;
            }
        },
    );
    for j in 0..num_vectors {
        let part = &contributions[j * k..(j + 1) * k];
        for (s, &c) in scores.iter_mut().zip(part.iter()) {
            *s += c;
        }
    }
    scores
}

/// Fills `h` with a random ±1 probe, de-meaned so it is not dominated by
/// the near-nullspace constant vector.
fn draw_probe(h: &mut [f64], rng: &mut StdRng) {
    let n = h.len();
    for hi in h.iter_mut() {
        *hi = if rng.random::<bool>() { 1.0 } else { -1.0 };
    }
    let mean: f64 = h.iter().sum::<f64>() / n as f64;
    for hi in h.iter_mut() {
        *hi -= mean;
    }
}

/// `power_steps` rounds of `h ← L_S⁻¹ (L_G h)`, normalised each step to
/// keep magnitudes stable.
fn power_iterate(
    lg: &CscMatrix,
    factor: &CholeskyFactor,
    power_steps: usize,
    h: &mut [f64],
    tmp: &mut [f64],
) {
    for _ in 0..power_steps {
        lg.matvec_into(h, tmp);
        factor.solve_into(tmp, h);
        let norm = h.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for hi in h.iter_mut() {
                *hi /= norm;
            }
        }
    }
}

/// Deterministic RNG used by the GRASS pipeline.
pub fn probe_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_graph::gen::{random_connected, WeightProfile};
    use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
    use tracered_graph::mst::{spanning_tree, TreeKind};
    use tracered_sparse::order::Ordering;

    fn setup() -> (Graph, CscMatrix, CholeskyFactor, Vec<usize>) {
        let g = random_connected(30, 40, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 11);
        let shifts = vec![1e-4; 30];
        let lg = laplacian_with_shifts(&g, &shifts);
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
        let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        (g, lg, factor, st.off_tree_edges)
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let (g, lg, factor, off) = setup();
        let mut rng = probe_rng(1);
        let s = grass_scores(&g, &lg, &factor, &off, 2, 3, &mut rng);
        assert_eq!(s.len(), off.len());
        for &v in &s {
            assert!(v.is_finite() && v >= 0.0);
        }
        assert!(s.iter().any(|&v| v > 0.0), "some edge must matter");
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, lg, factor, off) = setup();
        let a = grass_scores(&g, &lg, &factor, &off, 2, 3, &mut probe_rng(5));
        let b = grass_scores(&g, &lg, &factor, &off, 2, 3, &mut probe_rng(5));
        assert_eq!(a, b);
        let c = grass_scores(&g, &lg, &factor, &off, 2, 3, &mut probe_rng(6));
        assert_ne!(a, c);
    }

    #[test]
    fn subgraph_edges_score_zero_against_their_own_subgraph() {
        // After enough power iterations, h is smooth over well-connected
        // regions; an edge already in the subgraph gets a *small* score
        // compared to the single worst off-subgraph edge. Use a ring +
        // chord construction where the chord is clearly critical.
        let mut edges: Vec<(usize, usize, f64)> = (0..19).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((0, 19, 1.0)); // close the ring
        edges.push((5, 15, 1.0)); // chord
        let g = Graph::from_edges(20, &edges).unwrap();
        let shifts = vec![1e-4; 20];
        let lg = laplacian_with_shifts(&g, &shifts);
        // Subgraph: the path 0..19 (drop the closing edge and chord).
        let sub: Vec<usize> = (0..19).collect();
        let ls = subgraph_laplacian(&g, &sub, &shifts);
        let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        let candidates = vec![19usize, 20usize];
        let s = grass_scores(&g, &lg, &factor, &candidates, 3, 5, &mut probe_rng(2));
        // The ring-closing edge (0,19) spans the full path: it must beat
        // the chord (5,15) which spans half.
        assert!(s[0] > s[1], "ring edge {} should beat chord {}", s[0], s[1]);
    }
}
