//! Exclusion of spectrally similar off-subgraph edges (paper Step 8/20 of
//! Algorithm 2, technique from feGRASS \[Liu, Yu, Feng 2021\]).
//!
//! When an edge `(p, q)` is recovered, nearby off-subgraph edges fix
//! almost the same spectral deficiency — recovering several of them wastes
//! the edge budget. feGRASS suppresses them through *spectral edge
//! similarity*; we realise the same idea geometrically: recovering
//! `(p, q)` marks the γ-layer subgraph neighbourhoods of `p` and `q`, and
//! a candidate whose **both** endpoints are already marked in the current
//! densification iteration is skipped. Marks reset each iteration, when
//! criticalities are re-computed against the enlarged subgraph.

use std::collections::VecDeque;

use tracered_graph::bfs::mark_neighborhood;
use tracered_graph::Graph;

/// Tracks which nodes have been "covered" by edges recovered in the
/// current densification iteration.
///
/// # Example
///
/// ```
/// use tracered_core::similarity::SimilarityExclusion;
/// use tracered_graph::Graph;
///
/// # fn main() -> Result<(), tracered_graph::GraphError> {
/// let g = Graph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)])?;
/// let mut excl = SimilarityExclusion::new(6, 1);
/// excl.begin_iteration();
/// excl.mark_recovered(&g, 0, 1);
/// // Radius-1 neighbourhoods of 0 and 1 cover {0, 1, 2}.
/// assert!(excl.is_excluded(0, 2));
/// assert!(!excl.is_excluded(0, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimilarityExclusion {
    marks: Vec<u64>,
    stamp: u64,
    layers: usize,
    queue: VecDeque<(usize, usize)>,
}

impl SimilarityExclusion {
    /// Creates an exclusion tracker for `n` nodes with BFS radius
    /// `layers`.
    pub fn new(n: usize, layers: usize) -> Self {
        SimilarityExclusion { marks: vec![0; n], stamp: 0, layers, queue: VecDeque::new() }
    }

    /// Starts a new densification iteration (clears all marks in O(1)).
    pub fn begin_iteration(&mut self) {
        self.stamp += 1;
    }

    /// Marks the neighbourhoods of a recovered edge's endpoints. The BFS
    /// runs in `subgraph` (the current sparsifier), where spectral
    /// proximity lives.
    ///
    /// # Panics
    ///
    /// Panics if the subgraph has a different node count.
    pub fn mark_recovered(&mut self, subgraph: &Graph, p: usize, q: usize) {
        mark_neighborhood(subgraph, p, self.layers, &mut self.marks, self.stamp, &mut self.queue);
        mark_neighborhood(subgraph, q, self.layers, &mut self.marks, self.stamp, &mut self.queue);
    }

    /// Returns `true` when the candidate edge `(u, v)` should be skipped:
    /// both endpoints already covered this iteration.
    pub fn is_excluded(&self, u: usize, v: usize) -> bool {
        self.marks[u] == self.stamp && self.marks[v] == self.stamp
    }

    /// Number of nodes currently marked (linear scan; for diagnostics).
    pub fn marked_count(&self) -> usize {
        self.marks.iter().filter(|&&m| m == self.stamp).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn fresh_tracker_excludes_nothing() {
        let mut excl = SimilarityExclusion::new(5, 1);
        excl.begin_iteration();
        for u in 0..5 {
            for v in 0..5 {
                assert!(!excl.is_excluded(u, v));
            }
        }
    }

    #[test]
    fn marks_cover_neighborhoods() {
        let g = path(9);
        let mut excl = SimilarityExclusion::new(9, 2);
        excl.begin_iteration();
        excl.mark_recovered(&g, 4, 4);
        // Radius-2 around node 4: {2..=6}.
        assert_eq!(excl.marked_count(), 5);
        assert!(excl.is_excluded(2, 6));
        assert!(!excl.is_excluded(1, 6));
        assert!(!excl.is_excluded(2, 7));
    }

    #[test]
    fn begin_iteration_resets_marks() {
        let g = path(5);
        let mut excl = SimilarityExclusion::new(5, 1);
        excl.begin_iteration();
        excl.mark_recovered(&g, 2, 3);
        assert!(excl.is_excluded(2, 3));
        excl.begin_iteration();
        assert!(!excl.is_excluded(2, 3));
        assert_eq!(excl.marked_count(), 0);
    }

    #[test]
    fn zero_layers_marks_only_endpoints() {
        let g = path(5);
        let mut excl = SimilarityExclusion::new(5, 0);
        excl.begin_iteration();
        excl.mark_recovered(&g, 1, 3);
        assert_eq!(excl.marked_count(), 2);
        assert!(excl.is_excluded(1, 3));
        assert!(!excl.is_excluded(1, 2));
    }
}
