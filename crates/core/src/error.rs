//! Error type for the sparsification pipeline.

use std::error::Error;
use std::fmt;

use tracered_graph::GraphError;
use tracered_sparse::SparseError;

/// Errors produced by the sparsifier.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A graph-level precondition failed (disconnected input, bad edge, …).
    Graph(GraphError),
    /// A linear-algebra step failed (factorization of an indefinite
    /// matrix, …).
    Sparse(SparseError),
    /// A configuration value is out of its valid range.
    InvalidConfig {
        /// Description of the offending parameter.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Sparse(e) => write!(f, "sparse algebra error: {e}"),
            CoreError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Sparse(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SparseError> for CoreError {
    fn from(e: SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: CoreError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("graph error"));
        assert!(Error::source(&e).is_some());
        let e: CoreError = SparseError::NotSymmetric.into();
        assert!(e.to_string().contains("sparse"));
        let e = CoreError::InvalidConfig { what: "beta".into() };
        assert!(e.to_string().contains("beta"));
        assert!(Error::source(&e).is_none());
    }
}
