//! The overall sparsification driver — **Algorithm 2** of the paper.
//!
//! Pipeline (shared by all three methods so comparisons isolate the
//! criticality metric):
//!
//! 1. extract a low-stretch spanning tree (feGRASS's MEWST by default);
//! 2. score all off-tree edges against the tree — trace reduction uses
//!    the exact BFS voltage propagation of Eqs. 13–15;
//! 3. recover the top `α·|V| / N_r` edges, skipping spectrally similar
//!    ones;
//! 4. for each remaining densification iteration: factorize the current
//!    subgraph Laplacian, rebuild the criticality scores against it
//!    (trace reduction scores through Algorithm 1's approximate factor
//!    inverse, Eq. 20), and recover the next batch.

use std::time::Duration;

use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
use tracered_graph::lca::tree_resistances_threads;
use tracered_graph::mst::spanning_tree;
use tracered_graph::{Graph, GraphError, RootedTree};
use tracered_obs::Timer;
use tracered_sparse::{
    factorize_regularized_kernel, ApproxInverse, CholeskyFactor, CscMatrix, SpaiOptions,
    SparseError,
};

use crate::config::{Method, SparsifyConfig};
use crate::criticality::{subgraph_phase_scores_threads, tree_phase_scores_threads};
use crate::error::CoreError;
use crate::grass::{grass_scores_threads, probe_rng};
use crate::similarity::SimilarityExclusion;

/// Per-iteration diagnostics collected by the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// 1-based densification iteration number.
    pub iteration: usize,
    /// Candidates scored this iteration.
    pub scored: usize,
    /// Edges recovered this iteration.
    pub recovered: usize,
    /// Candidates skipped by similarity exclusion.
    pub excluded_skips: usize,
    /// Time spent factorizing the subgraph Laplacian.
    pub factor_time: Duration,
    /// Time spent computing criticality scores.
    pub score_time: Duration,
    /// Nonzeros of the approximate inverse factor (0 when unused).
    pub spai_nnz: usize,
    /// Hutchinson estimate of `Trace(L_S⁻¹ L_G)` *before* this
    /// iteration's recovery (only when
    /// [`SparsifyConfig::track_trace`] is enabled).
    pub trace_estimate: Option<f64>,
    /// Worker threads the scoring engine ran on (resolved from
    /// [`SparsifyConfig::threads`]; 1 = exact serial path). Comparing
    /// `score_time` across runs at different thread counts gives the
    /// score-phase speedup — scores themselves are bit-identical.
    pub threads: usize,
    /// Worker threads the subgraph Cholesky factorizations ran on
    /// (resolved from [`SparsifyConfig::factor_threads`]; 1 = serial
    /// up-looking kernel). The parallel factorization is bit-identical
    /// to serial, so comparing `factor_time` across runs at different
    /// settings gives the factor-phase speedup directly.
    pub factor_threads: usize,
    /// Size of the process-global worker pool when this iteration ran
    /// ([`tracered_par::global_pool_size`]): the `TRACERED_THREADS`
    /// override or the OS-reported parallelism. `threads` above is the
    /// *requested* cap; this is the hardware/runtime budget it was
    /// served from, so recorded stats are self-describing on any
    /// machine.
    pub pool_size: usize,
    /// Largest diagonal boost the resilience ladder applied to a
    /// factorization this iteration — `0.0` unless
    /// [`SparsifyConfig::pivot_boost`] is set *and* a retry was needed.
    /// A nonzero value means the iteration recovered from a pivot
    /// failure instead of erroring out.
    pub applied_shift: f64,
}

/// Summary of a sparsification run.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifyReport {
    /// The criticality metric used.
    pub method: Method,
    /// Wall-clock time of the whole run (the paper's `T_s`).
    pub total_time: Duration,
    /// Time spent building the spanning tree.
    pub tree_time: Duration,
    /// The edge-recovery budget `α·|V|` (clamped to the off-tree count).
    pub budget: usize,
    /// Components the partitioned driver re-solved exactly after their
    /// densification loop hit an unrecoverable factorization failure —
    /// always 0 for the plain [`sparsify`] driver, which fails fast
    /// instead. A nonzero count means the result is valid but denser
    /// than requested in the degraded regions.
    pub degraded_fallbacks: usize,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

impl std::fmt::Display for SparsifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:?}: budget {} edges, tree {:.3}s, total {:.3}s",
            self.method,
            self.budget,
            self.tree_time.as_secs_f64(),
            self.total_time.as_secs_f64()
        )?;
        if self.degraded_fallbacks > 0 {
            writeln!(f, "  degraded: {} component(s) re-solved exactly", self.degraded_fallbacks)?;
        }
        for it in &self.iterations {
            writeln!(
                f,
                "  iter {}: scored {}, recovered {}, skipped {}, factor {:.3}s, score {:.3}s",
                it.iteration,
                it.scored,
                it.recovered,
                it.excluded_skips,
                it.factor_time.as_secs_f64(),
                it.score_time.as_secs_f64()
            )?;
        }
        Ok(())
    }
}

/// A spectral sparsifier: a subset of the input graph's edges plus the
/// diagonal shift under which it was constructed.
#[derive(Debug, Clone)]
pub struct Sparsifier {
    edge_ids: Vec<usize>,
    tree_edge_count: usize,
    shifts: Vec<f64>,
    report: SparsifyReport,
}

impl Sparsifier {
    /// Assembles a sparsifier from already-selected parts — used by the
    /// partitioned driver to stitch per-partition results into one global
    /// sparsifier. `edge_ids` must hold the spanning-tree edges first.
    pub(crate) fn from_parts(
        edge_ids: Vec<usize>,
        tree_edge_count: usize,
        shifts: Vec<f64>,
        report: SparsifyReport,
    ) -> Self {
        Sparsifier { edge_ids, tree_edge_count, shifts, report }
    }

    /// Edge ids (into the original graph) forming the sparsifier, spanning
    /// tree first.
    pub fn edge_ids(&self) -> &[usize] {
        &self.edge_ids
    }

    /// Number of spanning-tree edges at the front of
    /// [`Sparsifier::edge_ids`].
    pub fn tree_edge_count(&self) -> usize {
        self.tree_edge_count
    }

    /// Number of recovered off-tree edges.
    pub fn num_recovered(&self) -> usize {
        self.edge_ids.len() - self.tree_edge_count
    }

    /// The diagonal shift vector shared by `L_G` and `L_P`.
    pub fn shifts(&self) -> &[f64] {
        &self.shifts
    }

    /// Run diagnostics.
    pub fn report(&self) -> &SparsifyReport {
        &self.report
    }

    /// The sparsifier Laplacian `L_P` (with the construction shift).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph this sparsifier was built from.
    pub fn laplacian(&self, g: &Graph) -> CscMatrix {
        subgraph_laplacian(g, &self.edge_ids, &self.shifts)
    }

    /// The full-graph Laplacian `L_G` under the same shift, suitable for
    /// computing `κ(L_G, L_P)`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph this sparsifier was built from.
    pub fn graph_laplacian(&self, g: &Graph) -> CscMatrix {
        laplacian_with_shifts(g, &self.shifts)
    }

    /// The sparsifier as a standalone graph over the same node set.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph this sparsifier was built from.
    pub fn as_graph(&self, g: &Graph) -> Graph {
        g.edge_subgraph(&self.edge_ids)
    }
}

/// The node with the largest weighted degree — the root the drivers hang
/// their scoring trees from (keeps BFS trees shallow on meshes). Shared
/// by [`sparsify`] and the partitioned driver's boundary-scoring path so
/// both score against identically-rooted trees.
pub(crate) fn heaviest_node(g: &Graph) -> usize {
    (0..g.num_nodes())
        .max_by(|&a, &b| g.weighted_degree(a).total_cmp(&g.weighted_degree(b)))
        .unwrap_or(0)
}

/// Factorizes a (subgraph) Laplacian through the configured resilience
/// path: fail-fast without a [`SparsifyConfig::pivot_boost`] ladder,
/// boosted retries with one. A boost that fires records its shift in
/// `stats.applied_shift` (the max over the iteration's factorizations).
fn factorize_resilient(
    m: &CscMatrix,
    cfg: &SparsifyConfig,
    factor_threads: usize,
    stats: &mut IterationStats,
) -> Result<CholeskyFactor, SparseError> {
    match cfg.pivot_boost_value() {
        None => CholeskyFactor::factorize_kernel(
            m,
            cfg.ordering_value(),
            cfg.kernel_value(),
            factor_threads,
        ),
        Some(schedule) => {
            let rf = factorize_regularized_kernel(
                m,
                cfg.ordering_value(),
                cfg.kernel_value(),
                factor_threads,
                &schedule,
            )?;
            if rf.applied_shift > stats.applied_shift {
                stats.applied_shift = rf.applied_shift;
            }
            Ok(rf.factor)
        }
    }
}

/// Runs graph spectral sparsification (paper Algorithm 2, or one of the
/// baselines selected by [`SparsifyConfig::new`]).
///
/// ```
/// use tracered_core::{sparsify, Method, SparsifyConfig};
/// use tracered_graph::gen::{grid2d, WeightProfile};
///
/// let g = grid2d(16, 16, WeightProfile::Unit, 7);
/// let sp = sparsify(&g, &SparsifyConfig::new(Method::TraceReduction))?;
/// // A spanning tree plus ~`edge_fraction · |V|` recovered edges.
/// assert!(sp.edge_ids().len() >= g.num_nodes() - 1);
/// assert!(sp.edge_ids().len() < g.num_edges());
/// // Per-iteration diagnostics, including the resolved thread budget.
/// assert!(sp.report().iterations[0].pool_size >= 1);
/// # Ok::<(), tracered_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for out-of-range parameters,
/// [`CoreError::Graph`] for empty or disconnected inputs, and
/// [`CoreError::Sparse`] if a subgraph factorization fails (e.g. a zero
/// shift made the Laplacian singular). Configuring
/// [`SparsifyConfig::pivot_boost`] retries failed factorizations with a
/// geometric diagonal-boost ladder instead, recording the applied shift
/// in [`IterationStats::applied_shift`].
pub fn sparsify(g: &Graph, cfg: &SparsifyConfig) -> Result<Sparsifier, CoreError> {
    cfg.validate()?;
    let n = g.num_nodes();
    if n == 0 {
        return Err(GraphError::EmptyGraph.into());
    }
    if !g.is_connected() {
        return Err(GraphError::Disconnected { components: g.num_components() }.into());
    }
    let shifts = cfg.shift_value().shifts(g)?;
    // Timers measure wall time unconditionally (the report fields below
    // depend on them) and double as spans when tracing is enabled, so the
    // report and the trace always describe the same measurement.
    let t_start =
        Timer::start_with("sparsify", &[("n", n as f64), ("edges", g.num_edges() as f64)]);

    // Step 1: low-stretch spanning tree.
    let t_tree = Timer::start("sparsify.tree");
    let st = spanning_tree(g, cfg.tree_kind_value())?;
    let tree = RootedTree::build(g, &st.tree_edges, heaviest_node(g))?;
    let tree_time = t_tree.stop();

    let budget =
        ((cfg.edge_fraction_value() * n as f64).round() as usize).min(st.off_tree_edges.len());
    let nr = cfg.num_iterations();
    let lg = laplacian_with_shifts(g, &shifts);
    let threads = tracered_par::effective_threads(cfg.threads_value());
    let factor_threads = tracered_par::effective_threads(cfg.factor_threads_value());
    let mut rng = probe_rng(cfg.seed_value());

    let mut selected = st.tree_edges.clone();
    let tree_edge_count = selected.len();
    let mut candidates = st.off_tree_edges;
    let mut excl = SimilarityExclusion::new(n, cfg.similarity_layers_value());
    let mut iterations = Vec::new();
    let mut remaining = budget;

    for iter_idx in 0..nr {
        if remaining == 0 || candidates.is_empty() {
            break;
        }
        let mut iter_span = tracered_obs::span!("sparsify.iter", {
            iter: iter_idx + 1,
            candidates: candidates.len(),
        });
        let quota = remaining.div_ceil(nr - iter_idx).min(remaining);
        let mut stats = IterationStats {
            iteration: iter_idx + 1,
            scored: candidates.len(),
            recovered: 0,
            excluded_skips: 0,
            factor_time: Duration::ZERO,
            score_time: Duration::ZERO,
            spai_nnz: 0,
            trace_estimate: None,
            threads,
            factor_threads,
            pool_size: tracered_par::global_pool_size(),
            applied_shift: 0.0,
        };
        if cfg.track_trace_enabled() {
            let ls = subgraph_laplacian(g, &selected, &shifts);
            if let Ok(factor) = factorize_resilient(&ls, cfg, factor_threads, &mut stats) {
                stats.trace_estimate = Some(crate::metrics::trace_proxy_hutchinson_threads(
                    &lg,
                    &factor,
                    24,
                    cfg.seed_value() ^ iter_idx as u64,
                    threads,
                ));
            }
        }

        // --- Score candidates against the current subgraph. ---
        let t_score = Timer::start("sparsify.score");
        let scores: Vec<f64> = if iter_idx == 0 {
            match cfg.method() {
                Method::TraceReduction => {
                    let pairs: Vec<(usize, usize)> =
                        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
                    let rs = tree_resistances_threads(&tree, &pairs, threads);
                    tree_phase_scores_threads(g, &tree, &candidates, &rs, cfg.beta_value(), threads)
                }
                Method::EffectiveResistance => {
                    let pairs: Vec<(usize, usize)> =
                        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
                    let rs = tree_resistances_threads(&tree, &pairs, threads);
                    candidates
                        .iter()
                        .zip(rs.iter())
                        .map(|(&id, &r)| g.edge(id).weight * r)
                        .collect()
                }
                Method::Grass => {
                    let t_factor = Timer::start("sparsify.factor");
                    let ls = subgraph_laplacian(g, &selected, &shifts);
                    let factor = factorize_resilient(&ls, cfg, factor_threads, &mut stats)?;
                    stats.factor_time = t_factor.stop();
                    grass_scores_threads(
                        g,
                        &lg,
                        &factor,
                        &candidates,
                        cfg.grass_power_steps_value(),
                        cfg.grass_num_vectors_value(),
                        &mut rng,
                        threads,
                    )
                }
                Method::JlResistance => {
                    // Spielman–Srivastava: resistances in the *full* graph,
                    // which costs a full-graph factorization — exactly the
                    // expense the paper's introduction calls out.
                    let t_factor = Timer::start("sparsify.factor");
                    let full_factor = factorize_resilient(&lg, cfg, factor_threads, &mut stats)?;
                    stats.factor_time = t_factor.stop();
                    crate::jl::jl_scores(
                        g,
                        &full_factor,
                        &candidates,
                        cfg.jl_probes_value(),
                        cfg.seed_value(),
                    )
                }
            }
        } else {
            // Refactorize the current subgraph only for the methods that
            // score against it; the single-pass rankings below never read
            // the subgraph factor.
            let subgraph_factor = |stats: &mut IterationStats| {
                let t_factor = Timer::start("sparsify.factor");
                let ls = subgraph_laplacian(g, &selected, &shifts);
                let factor = factorize_resilient(&ls, cfg, factor_threads, stats);
                stats.factor_time = t_factor.stop();
                factor
            };
            match cfg.method() {
                Method::TraceReduction => {
                    let factor = subgraph_factor(&mut stats)?;
                    let zinv = ApproxInverse::build(
                        factor.l(),
                        SpaiOptions::with_threshold(cfg.spai_threshold_value()),
                    )?;
                    stats.spai_nnz = zinv.nnz();
                    let subgraph = g.edge_subgraph(&selected);
                    subgraph_phase_scores_threads(
                        g,
                        &subgraph,
                        &factor,
                        &zinv,
                        &candidates,
                        cfg.beta_value(),
                        threads,
                    )
                }
                Method::Grass => {
                    let factor = subgraph_factor(&mut stats)?;
                    grass_scores_threads(
                        g,
                        &lg,
                        &factor,
                        &candidates,
                        cfg.grass_power_steps_value(),
                        cfg.grass_num_vectors_value(),
                        &mut rng,
                        threads,
                    )
                }
                Method::EffectiveResistance => {
                    // Single-pass method; if the user forces more
                    // iterations, keep re-ranking by tree resistance.
                    let pairs: Vec<(usize, usize)> =
                        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
                    let rs = tree_resistances_threads(&tree, &pairs, threads);
                    candidates
                        .iter()
                        .zip(rs.iter())
                        .map(|(&id, &r)| g.edge(id).weight * r)
                        .collect()
                }
                Method::JlResistance => {
                    // Single-pass method: keep the full-graph ranking.
                    let t_factor = Timer::start("sparsify.factor");
                    let full_factor = factorize_resilient(&lg, cfg, factor_threads, &mut stats)?;
                    stats.factor_time = t_factor.stop();
                    crate::jl::jl_scores(
                        g,
                        &full_factor,
                        &candidates,
                        cfg.jl_probes_value(),
                        cfg.seed_value(),
                    )
                }
            }
        };
        stats.score_time = t_score.stop();

        // --- Rank and recover the iteration quota. ---
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b].total_cmp(&scores[a]).then_with(|| candidates[a].cmp(&candidates[b]))
        });
        let mut picked_flags = vec![false; candidates.len()];
        let mut picked = 0usize;
        if cfg.similarity_exclusion_enabled() {
            excl.begin_iteration();
            let mark_graph = g.edge_subgraph(&selected);
            for &ci in &order {
                if picked == quota {
                    break;
                }
                let e = g.edge(candidates[ci]);
                if excl.is_excluded(e.u, e.v) {
                    stats.excluded_skips += 1;
                    continue;
                }
                picked_flags[ci] = true;
                picked += 1;
                excl.mark_recovered(&mark_graph, e.u, e.v);
            }
        }
        // Honour the budget even when exclusion filtered too aggressively
        // (keeps edge counts identical across methods for fair κ
        // comparisons).
        if picked < quota {
            for &ci in &order {
                if picked == quota {
                    break;
                }
                if !picked_flags[ci] {
                    picked_flags[ci] = true;
                    picked += 1;
                }
            }
        }
        let mut next_candidates = Vec::with_capacity(candidates.len() - picked);
        for (ci, &id) in candidates.iter().enumerate() {
            if picked_flags[ci] {
                selected.push(id);
            } else {
                next_candidates.push(id);
            }
        }
        candidates = next_candidates;
        remaining -= picked;
        stats.recovered = picked;
        if let Some(g) = iter_span.as_mut() {
            g.arg("recovered", picked as f64);
        }
        iterations.push(stats);
    }

    let report = SparsifyReport {
        method: cfg.method(),
        total_time: t_start.stop(),
        tree_time,
        budget,
        degraded_fallbacks: 0,
        iterations,
    };
    Ok(Sparsifier { edge_ids: selected, tree_edge_count, shifts, report })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::relative_condition_number;
    use tracered_graph::gen::{grid2d, random_connected, tri_mesh, WeightProfile};
    use tracered_sparse::order::Ordering;

    fn kappa(g: &Graph, sp: &Sparsifier) -> f64 {
        let lg = sp.graph_laplacian(g);
        let lp = sp.laplacian(g);
        let f = CholeskyFactor::factorize(&lp, Ordering::MinDegree).unwrap();
        relative_condition_number(&lg, &f, 60, 42)
    }

    #[test]
    fn sparsifier_has_tree_plus_budget_edges() {
        let g = grid2d(15, 15, WeightProfile::Unit, 1);
        let cfg = SparsifyConfig::new(Method::TraceReduction);
        let sp = sparsify(&g, &cfg).unwrap();
        let n = g.num_nodes();
        assert_eq!(sp.tree_edge_count(), n - 1);
        assert_eq!(sp.num_recovered(), (0.10f64 * n as f64).round() as usize);
        assert_eq!(sp.edge_ids().len(), sp.tree_edge_count() + sp.num_recovered());
    }

    #[test]
    fn sparsifier_is_connected_subgraph() {
        let g = tri_mesh(12, 12, WeightProfile::LogUniform { lo: 0.1, hi: 10.0 }, 2);
        let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
        assert!(sp.as_graph(&g).is_connected());
        // No duplicate edge ids.
        let mut ids = sp.edge_ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sp.edge_ids().len());
    }

    #[test]
    fn recovering_edges_improves_kappa_over_tree() {
        let g = grid2d(14, 14, WeightProfile::Unit, 3);
        let tree_only = sparsify(&g, &SparsifyConfig::default().edge_fraction(0.0)).unwrap();
        let sparsified = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let k_tree = kappa(&g, &tree_only);
        let k_sp = kappa(&g, &sparsified);
        assert!(
            k_sp < k_tree,
            "recovered edges must improve conditioning: tree {k_tree} vs sparsifier {k_sp}"
        );
    }

    #[test]
    fn trace_reduction_beats_effective_resistance_on_meshes() {
        // The paper's headline: trace reduction produces better sparsifiers
        // than effective-resistance ranking at the same edge count.
        let g = tri_mesh(14, 14, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 7);
        let k_tr = kappa(&g, &sparsify(&g, &SparsifyConfig::new(Method::TraceReduction)).unwrap());
        let k_er =
            kappa(&g, &sparsify(&g, &SparsifyConfig::new(Method::EffectiveResistance)).unwrap());
        assert!(
            k_tr < k_er * 1.05,
            "trace reduction ({k_tr}) should not lose to effective resistance ({k_er})"
        );
    }

    #[test]
    fn all_methods_produce_equal_edge_counts() {
        let g = grid2d(12, 12, WeightProfile::Unit, 5);
        let counts: Vec<usize> = [
            Method::TraceReduction,
            Method::Grass,
            Method::EffectiveResistance,
            Method::JlResistance,
        ]
        .into_iter()
        .map(|m| sparsify(&g, &SparsifyConfig::new(m)).unwrap().edge_ids().len())
        .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn jl_resistance_produces_competitive_sparsifier() {
        // JL sampling weights w·R_G are the theoretically-grounded
        // criticalities; the sparsifier they produce must be in the same
        // quality league as tree-resistance ranking.
        let g = tri_mesh(12, 12, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 11);
        let k_jl = kappa(&g, &sparsify(&g, &SparsifyConfig::new(Method::JlResistance)).unwrap());
        let k_er =
            kappa(&g, &sparsify(&g, &SparsifyConfig::new(Method::EffectiveResistance)).unwrap());
        assert!(k_jl >= 1.0 && k_er >= 1.0);
        assert!(k_jl < k_er * 3.0, "JL κ {k_jl} should be comparable to tree-ER κ {k_er}");
        // And the full-graph factorization cost is recorded.
        let sp = sparsify(&g, &SparsifyConfig::new(Method::JlResistance)).unwrap();
        assert!(sp.report().iterations[0].factor_time > Duration::ZERO);
    }

    #[test]
    fn zero_fraction_returns_spanning_tree() {
        let g = random_connected(40, 60, WeightProfile::Unit, 9);
        let sp = sparsify(&g, &SparsifyConfig::default().edge_fraction(0.0)).unwrap();
        assert_eq!(sp.edge_ids().len(), 39);
        assert_eq!(sp.num_recovered(), 0);
    }

    #[test]
    fn huge_fraction_recovers_everything() {
        let g = random_connected(30, 50, WeightProfile::Unit, 4);
        let sp = sparsify(&g, &SparsifyConfig::default().edge_fraction(10.0)).unwrap();
        assert_eq!(sp.edge_ids().len(), g.num_edges());
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            sparsify(&g, &SparsifyConfig::default()),
            Err(CoreError::Graph(GraphError::Disconnected { .. }))
        ));
        let e = Graph::from_edges(0, &[]).unwrap();
        assert!(matches!(
            sparsify(&e, &SparsifyConfig::default()),
            Err(CoreError::Graph(GraphError::EmptyGraph))
        ));
    }

    #[test]
    fn report_accounts_for_all_recovered_edges() {
        let g = grid2d(12, 12, WeightProfile::Unit, 8);
        let sp = sparsify(&g, &SparsifyConfig::default().iterations(3)).unwrap();
        let recovered: usize = sp.report().iterations.iter().map(|i| i.recovered).sum();
        assert_eq!(recovered, sp.num_recovered());
        assert_eq!(sp.report().iterations.len(), 3);
        assert!(sp.report().iterations.iter().skip(1).all(|i| i.spai_nnz > 0));
        let text = sp.report().to_string();
        assert!(text.contains("iter 1"));
    }

    #[test]
    fn tracked_trace_decreases_across_iterations() {
        let g = tri_mesh(12, 12, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 4);
        let sp = sparsify(&g, &SparsifyConfig::default().iterations(4).track_trace(true)).unwrap();
        let traces: Vec<f64> = sp
            .report()
            .iterations
            .iter()
            .map(|it| it.trace_estimate.expect("tracking enabled"))
            .collect();
        assert_eq!(traces.len(), 4);
        // Each iteration's recoveries must lower the trace seen by the
        // next one (Hutchinson noise allowed: 5% slack).
        for w in traces.windows(2) {
            assert!(w[1] < w[0] * 1.05, "trace must trend down across iterations: {traces:?}");
        }
        assert!(traces.last().unwrap() * 1.5 < traces[0], "overall drop expected: {traces:?}");
    }

    #[test]
    fn trace_tracking_off_by_default() {
        let g = grid2d(8, 8, WeightProfile::Unit, 2);
        let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
        assert!(sp.report().iterations.iter().all(|it| it.trace_estimate.is_none()));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = tri_mesh(10, 10, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 6);
        let a = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let b = sparsify(&g, &SparsifyConfig::default()).unwrap();
        assert_eq!(a.edge_ids(), b.edge_ids());
    }

    #[test]
    fn pivot_boost_recovers_singular_full_laplacian_factorization() {
        use tracered_graph::laplacian::ShiftPolicy;
        use tracered_sparse::BoostSchedule;
        let g = grid2d(10, 10, WeightProfile::Unit, 3);
        // An unshifted Laplacian is exactly singular, and JL-resistance
        // scoring factorizes the full graph Laplacian up front: without
        // the resilience ladder the run fails fast...
        let cfg = SparsifyConfig::new(Method::JlResistance).shift(ShiftPolicy::None);
        assert!(matches!(sparsify(&g, &cfg), Err(CoreError::Sparse(_))));
        // ...and recovers with it, reporting the applied shift.
        let boosted = SparsifyConfig::new(Method::JlResistance)
            .shift(ShiftPolicy::None)
            .pivot_boost(Some(BoostSchedule::default()));
        let sp = sparsify(&g, &boosted).unwrap();
        assert!(
            sp.report().iterations.iter().any(|it| it.applied_shift > 0.0),
            "recovery must be visible in IterationStats"
        );
        assert!(sp.as_graph(&g).is_connected());
    }

    #[test]
    fn applied_shift_is_zero_on_healthy_runs() {
        use tracered_sparse::BoostSchedule;
        let g = grid2d(10, 10, WeightProfile::Unit, 3);
        let sp =
            sparsify(&g, &SparsifyConfig::default().pivot_boost(Some(BoostSchedule::default())))
                .unwrap();
        assert!(sp.report().iterations.iter().all(|it| it.applied_shift == 0.0));
    }

    #[test]
    fn single_node_graph_yields_empty_sparsifier() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
        assert!(sp.edge_ids().is_empty());
    }
}
