//! Shared per-worker workspace shapes for the parallel drivers.
//!
//! The pool's per-thread scratch cache keys on the scratch **type**
//! ([`tracered_par::par_chunks_mut_scratch`]), so every call site using
//! the same type shares one slot per thread. Giving that shared slot a
//! named type (rather than an anonymous tuple) makes the coupling
//! visible and states the contract once: the value is a **capacity
//! donor only**, and every user must fully overwrite the workspace per
//! job.

/// Two `f64` workspaces recycled together through the scratch cache.
///
/// Shared by the GRASS probe evaluator (`grass::grass_scores_threads`:
/// probe + power-iteration temp) and the Hutchinson trace estimator
/// (`metrics::trace_proxy_hutchinson`: `L_G z` + solve output). Both
/// resize to the region's `n` and fully overwrite each vector per job,
/// so only capacity carries over between regions — never values.
#[derive(Default)]
pub(crate) struct VecPair {
    /// First workspace (probe / matvec output).
    pub a: Vec<f64>,
    /// Second workspace (iteration temp / solve output).
    pub b: Vec<f64>,
}

/// Recycling factory: returns a [`VecPair`] of two length-`n` zeroed
/// vectors, reusing the cached pair's allocations when present.
pub(crate) fn vec_pair_factory(n: usize) -> impl Fn(Option<VecPair>) -> VecPair + Sync {
    move |cached| {
        let mut pair = cached.unwrap_or_default();
        pair.a.clear();
        pair.a.resize(n, 0.0);
        pair.b.clear();
        pair.b.resize(n, 0.0);
        pair
    }
}
