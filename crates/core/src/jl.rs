//! Johnson–Lindenstrauss effective-resistance estimation — the
//! Spielman–Srivastava [SIAM J. Comput. 2011] approach the paper's
//! introduction positions itself against ("computing effective
//! resistances with respect to general graphs can be extremely
//! time-consuming even with the state-of-the-art method based on the
//! Johnson–Lindenstrauss theorem").
//!
//! For the graph Laplacian `L = Bᵀ W B` (incidence matrix `B`), every
//! effective resistance is a squared distance between rows of
//! `X = W^{1/2} B L⁻¹`: `R(u, v) = ‖X(e_u − e_v)‖²`. Projecting onto
//! `k = O(log n / ε²)` random ±1 directions preserves these distances, so
//! `k` Laplacian solves suffice to estimate *all* resistances:
//! `z_i = L⁻¹ Bᵀ W^{1/2} q_i` with random `q_i`, and
//! `R̃(u, v) = Σᵢ (z_i[u] − z_i[v])²`.
//!
//! Exposed here both as a standalone estimator (validated against the
//! dense oracle) and as the `w·R̃` edge-criticality baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tracered_graph::Graph;
use tracered_sparse::CholeskyFactor;

/// Estimates the effective resistances of the given node pairs in the
/// graph underlying `factor` (a factorization of the graph's shifted
/// Laplacian) using `probes` JL projections — `probes` Laplacian solves
/// in total.
///
/// With `probes ≈ 24 ln n / ε²` the estimates are within `1 ± ε` of the
/// true (shifted) resistances with high probability; in ranking uses a
/// few dozen probes suffice.
///
/// # Panics
///
/// Panics if `probes == 0`, dimensions disagree, or a pair is out of
/// bounds.
pub fn jl_resistances(
    g: &Graph,
    factor: &CholeskyFactor,
    pairs: &[(usize, usize)],
    probes: usize,
    seed: u64,
) -> Vec<f64> {
    let n = g.num_nodes();
    assert!(probes > 0, "at least one probe is required");
    assert_eq!(factor.n(), n, "factor dimension must match the graph");
    assert!(pairs.iter().all(|&(u, v)| u < n && v < n), "pair endpoints must be in bounds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = vec![0.0f64; pairs.len()];
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    let scale = 1.0 / (probes as f64).sqrt();
    for _ in 0..probes {
        // y = Bᵀ W^{1/2} q with q random ±1 over edges.
        y.fill(0.0);
        for e in g.edges() {
            let q = if rng.random::<bool>() { scale } else { -scale };
            let c = q * e.weight.sqrt();
            y[e.u] += c;
            y[e.v] -= c;
        }
        factor.solve_into(&y, &mut z);
        for (a, &(u, v)) in acc.iter_mut().zip(pairs.iter()) {
            let d = z[u] - z[v];
            *a += d * d;
        }
    }
    acc
}

/// JL-resistance criticality scores for off-subgraph edges:
/// `w_e · R̃_G(e)` with resistances estimated **in the full graph** (the
/// Spielman–Srivastava sampling weight). One batch of `probes` solves
/// with the full-graph factor scores every candidate.
///
/// # Panics
///
/// Same conditions as [`jl_resistances`].
pub fn jl_scores(
    g: &Graph,
    full_factor: &CholeskyFactor,
    candidates: &[usize],
    probes: usize,
    seed: u64,
) -> Vec<f64> {
    let pairs: Vec<(usize, usize)> =
        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = jl_resistances(g, full_factor, &pairs, probes, seed);
    candidates.iter().zip(rs.iter()).map(|(&id, &r)| g.edge(id).weight * r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::effective_resistance;
    use tracered_graph::gen::{random_connected, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;
    use tracered_sparse::order::Ordering;

    fn setup(n: usize, seed: u64) -> (Graph, CholeskyFactor) {
        let g = random_connected(n, 2 * n, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, seed);
        let shift = 1e-6 * 2.0 * g.total_weight() / n as f64;
        let l = laplacian_with_shifts(&g, &vec![shift; n]);
        let f = CholeskyFactor::factorize(&l, Ordering::MinDegree).unwrap();
        (g, f)
    }

    #[test]
    fn estimates_concentrate_around_exact_resistances() {
        let (g, f) = setup(24, 3);
        let pairs: Vec<(usize, usize)> = (1..24).map(|v| (0, v)).collect();
        let approx = jl_resistances(&g, &f, &pairs, 600, 7);
        for (k, &(u, v)) in pairs.iter().enumerate() {
            let exact = effective_resistance(&g, u, v).unwrap();
            let rel = (approx[k] - exact).abs() / exact;
            assert!(
                rel < 0.35,
                "pair ({u},{v}): JL {:.4} vs exact {exact:.4} (rel {rel:.2})",
                approx[k]
            );
        }
    }

    #[test]
    fn more_probes_reduce_spread() {
        let (g, f) = setup(20, 9);
        let pairs = vec![(0usize, 10usize)];
        let exact = effective_resistance(&g, 0, 10).unwrap();
        // Average relative error over independent seeds, few vs many probes.
        let avg_err = |probes: usize| -> f64 {
            (0..8)
                .map(|s| {
                    let r = jl_resistances(&g, &f, &pairs, probes, 100 + s)[0];
                    (r - exact).abs() / exact
                })
                .sum::<f64>()
                / 8.0
        };
        let coarse = avg_err(8);
        let fine = avg_err(512);
        assert!(fine < coarse, "error must shrink with probes: {fine} vs {coarse}");
        assert!(fine < 0.1, "512 probes should be accurate, err {fine}");
    }

    #[test]
    fn scores_are_weight_times_resistance() {
        let (g, f) = setup(16, 4);
        let candidates: Vec<usize> = (0..6).collect();
        let scores = jl_scores(&g, &f, &candidates, 400, 11);
        let pairs: Vec<(usize, usize)> =
            candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
        let rs = jl_resistances(&g, &f, &pairs, 400, 11);
        for k in 0..6 {
            let expect = g.edge(candidates[k]).weight * rs[k];
            assert!((scores[k] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, f) = setup(14, 6);
        let pairs = vec![(0, 5), (3, 9)];
        let a = jl_resistances(&g, &f, &pairs, 32, 42);
        let b = jl_resistances(&g, &f, &pairs, 32, 42);
        assert_eq!(a, b);
        let c = jl_resistances(&g, &f, &pairs, 32, 43);
        assert_ne!(a, c);
    }
}
