//! Quality metrics for sparsifiers: the relative condition number
//! `κ(L_G, L_P)` and the trace proxy `Trace(L_P⁻¹ L_G)` it is bounded by.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tracered_sparse::{CholeskyFactor, CscMatrix};

/// Estimates `κ(L_G, L_P) = λ_max(L_P⁻¹ L_G)` by generalized power
/// iteration: `v ← L_P⁻¹ (L_G v)` with the generalized Rayleigh quotient
/// `(vᵀ L_G v) / (vᵀ L_P v)` as the eigenvalue estimate.
///
/// With both Laplacians sharing the same diagonal shift, all generalized
/// eigenvalues are ≥ 1 and this value *is* the relative condition number
/// (paper footnote 1). The estimate converges from below; `iters` around
/// 50–100 gives 2–3 significant digits on mesh problems.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn relative_condition_number(
    lg: &CscMatrix,
    lp_factor: &CholeskyFactor,
    iters: usize,
    seed: u64,
) -> f64 {
    let n = lg.ncols();
    assert_eq!(lp_factor.n(), n, "dimensions must agree");
    if n == 0 {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut lgv = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];
    let mut lambda = 1.0f64;
    for _ in 0..iters {
        lg.matvec_into(&v, &mut lgv);
        lp_factor.solve_into(&lgv, &mut w);
        // Generalized Rayleigh quotient at the new iterate w:
        // λ(w) = (wᵀ L_G w) / (wᵀ L_P w), where wᵀ L_P w = wᵀ (L_G v)
        // because L_P w = L_G v by construction.
        let wlpw: f64 = w.iter().zip(lgv.iter()).map(|(a, b)| a * b).sum();
        lg.matvec_into(&w, &mut lgv);
        let wlgw: f64 = w.iter().zip(lgv.iter()).map(|(a, b)| a * b).sum();
        if wlpw > 0.0 {
            lambda = wlgw / wlpw;
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            break;
        }
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi / norm;
        }
    }
    lambda
}

/// Hutchinson stochastic estimate of `Trace(L_P⁻¹ L_G)` with Rademacher
/// probes: `mean_z zᵀ L_P⁻¹ L_G z`.
///
/// # Panics
///
/// Panics if dimensions disagree or `probes == 0`.
pub fn trace_proxy_hutchinson(
    lg: &CscMatrix,
    lp_factor: &CholeskyFactor,
    probes: usize,
    seed: u64,
) -> f64 {
    trace_proxy_hutchinson_threads(lg, lp_factor, probes, seed, 1)
}

/// [`trace_proxy_hutchinson`] with the probe evaluations fanned out over
/// `threads` workers.
///
/// Probes are drawn serially (fixed RNG stream), each probe's
/// matvec-and-solve runs as an independent work item with private
/// buffers, and the per-probe quadratic forms are averaged in probe
/// order — bit-identical to the serial path for every thread count.
///
/// # Panics
///
/// Same conditions as [`trace_proxy_hutchinson`].
pub fn trace_proxy_hutchinson_threads(
    lg: &CscMatrix,
    lp_factor: &CholeskyFactor,
    probes: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    let n = lg.ncols();
    assert_eq!(lp_factor.n(), n, "dimensions must agree");
    assert!(probes > 0, "at least one probe is required");
    let mut rng = StdRng::seed_from_u64(seed);
    if threads <= 1 {
        // Streaming serial path: one probe at a time in O(n) scratch,
        // accumulated in probe order.
        let mut z = vec![0.0f64; n];
        let mut lgz = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut acc = 0.0;
        for _ in 0..probes {
            for zi in z.iter_mut() {
                *zi = if rng.random::<bool>() { 1.0 } else { -1.0 };
            }
            lg.matvec_into(&z, &mut lgz);
            lp_factor.solve_into(&lgz, &mut y);
            acc += z.iter().zip(y.iter()).map(|(a, b)| a * b).sum::<f64>();
        }
        return acc / probes as f64;
    }
    // Parallel path: probes drawn up front in the same stream order, one
    // work item each, quadratic forms summed in probe order — identical
    // to the serial accumulation.
    let probe_vecs: Vec<Vec<f64>> = (0..probes)
        .map(|_| (0..n).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect())
        .collect();
    let mut terms = vec![0.0f64; probes];
    tracered_par::par_chunks_mut_scratch(
        &mut terms,
        1,
        threads,
        crate::workspace::vec_pair_factory(n),
        |ws, start, out| {
            let (lgz, y) = (&mut ws.a, &mut ws.b);
            let z = &probe_vecs[start];
            lg.matvec_into(z, lgz);
            lp_factor.solve_into(lgz, y);
            out[0] = z.iter().zip(y.iter()).map(|(a, b)| a * b).sum::<f64>();
        },
    );
    terms.iter().sum::<f64>() / probes as f64
}

/// Exact `Trace(L_P⁻¹ L_G)` via `n` solves — `O(n²)`-ish on sparse
/// factors, intended for validation and small problems.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn trace_proxy_exact(lg: &CscMatrix, lp_factor: &CholeskyFactor) -> f64 {
    let n = lg.ncols();
    assert_eq!(lp_factor.n(), n, "dimensions must agree");
    let mut e = vec![0.0f64; n];
    let mut col = vec![0.0f64; n];
    let mut acc = 0.0;
    for j in 0..n {
        // (L_P⁻¹ L_G)_{jj} = e_jᵀ L_P⁻¹ (L_G e_j).
        e.fill(0.0);
        e[j] = 1.0;
        let lg_ej = lg.matvec(&e);
        lp_factor.solve_into(&lg_ej, &mut col);
        acc += col[j];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
    use tracered_graph::mst::{spanning_tree, TreeKind};
    use tracered_sparse::order::Ordering;

    fn setup() -> (CscMatrix, CholeskyFactor, CholeskyFactor) {
        let g = grid2d(7, 7, WeightProfile::Unit, 5);
        let shifts = vec![1e-3; 49];
        let lg = laplacian_with_shifts(&g, &shifts);
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
        let tree_factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        let full_factor = CholeskyFactor::factorize(&lg, Ordering::MinDegree).unwrap();
        (lg, tree_factor, full_factor)
    }

    #[test]
    fn kappa_of_self_is_one() {
        let (lg, _, full) = setup();
        let k = relative_condition_number(&lg, &full, 40, 1);
        assert!((k - 1.0).abs() < 1e-6, "κ(L, L) = 1, got {k}");
    }

    #[test]
    fn kappa_of_tree_preconditioner_exceeds_one() {
        let (lg, tree, _) = setup();
        let k = relative_condition_number(&lg, &tree, 60, 1);
        assert!(k > 1.5, "tree preconditioner of a grid must be noticeably worse, got {k}");
    }

    #[test]
    fn kappa_matches_dense_eigenvalue() {
        let (lg, tree, _) = setup();
        let k = relative_condition_number(&lg, &tree, 200, 3);
        // Dense oracle: λ_max(L_P⁻¹ L_G) via dense power iteration on the
        // explicitly formed matrix.
        let n = lg.ncols();
        let mut m = tracered_sparse::DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let lg_ej = lg.matvec(&e);
            let col = tree.solve(&lg_ej);
            for i in 0..n {
                m[(i, j)] = col[i];
            }
        }
        // Power iteration on the (non-symmetric but similar-to-symmetric)
        // dense matrix.
        let mut v = vec![1.0; n];
        for _ in 0..500 {
            let w = m.matvec(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            v = w.iter().map(|x| x / norm).collect();
        }
        let mv = m.matvec(&v);
        let lam: f64 = v.iter().zip(mv.iter()).map(|(a, b)| a * b).sum();
        assert!((k - lam).abs() < 0.05 * lam, "sparse estimate {k} vs dense {lam}");
    }

    #[test]
    fn hutchinson_approaches_exact_trace() {
        let (lg, tree, _) = setup();
        let exact = trace_proxy_exact(&lg, &tree);
        let est = trace_proxy_hutchinson(&lg, &tree, 200, 9);
        assert!((est - exact).abs() < 0.15 * exact, "hutchinson {est} vs exact {exact}");
    }

    #[test]
    fn trace_bounds_kappa() {
        let (lg, tree, _) = setup();
        let k = relative_condition_number(&lg, &tree, 100, 1);
        let t = trace_proxy_exact(&lg, &tree);
        assert!(t >= k - 1e-6, "trace {t} must dominate κ {k}");
    }
}
