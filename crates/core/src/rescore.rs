//! Localized candidate re-scoring after an edge perturbation.
//!
//! Contingency screening perturbs one mesh edge at a time. Re-running
//! the whole sparsification pipeline per outage would dwarf the cost of
//! the incremental factor update it accompanies, but the PR 3 partition
//! structure localizes the blast radius: an edge perturbation can only
//! change the standing of *unselected* candidate edges incident to the
//! partition(s) containing its endpoints — every other part's scores
//! were computed against the same stitched spanning tree and are
//! untouched.
//!
//! [`rescore_affected_partition`] re-scores exactly that slice: it
//! rebuilds nothing, reuses the sparsifier's global stitched tree, and
//! produces scores **bitwise equal** to what a full scoring pass would
//! assign those same candidates (same tree, same resistances, same
//! kernels — the localization only restricts *which* candidates are
//! evaluated, never *how*). Perturbing a spanning-tree edge of the
//! sparsifier has a global blast radius (the tree itself changes), so
//! that case is reported as [`Rescore::TreeEdge`] and the caller falls
//! back to a full re-sparsification.

use tracered_graph::lca::tree_resistances_threads;
use tracered_graph::{Graph, RootedTree};

use crate::criticality::tree_phase_scores_threads;
use crate::error::CoreError;
use crate::partitioned::PartitionedSparsifier;
use crate::sparsify::heaviest_node;

/// Outcome of a localized re-scoring request.
#[derive(Debug, Clone)]
pub enum Rescore {
    /// The blast radius was contained; scores for the affected
    /// candidates are in the report.
    Localized(RescoreReport),
    /// The perturbed edge is a spanning-tree edge of the sparsifier:
    /// its perturbation invalidates the tree every score is measured
    /// against, so only a full re-sparsification is sound.
    TreeEdge,
}

/// Scores of the candidates inside the perturbation's blast radius.
#[derive(Debug, Clone)]
pub struct RescoreReport {
    /// The affected partition ids (one, or two for a cut edge).
    pub parts: Vec<usize>,
    /// Unselected candidate edges incident to an affected part
    /// (ascending edge ids; the perturbed edge itself is excluded).
    pub candidates: Vec<usize>,
    /// Phase-aware criticality score per candidate, index-aligned with
    /// `candidates` — bitwise equal to a full scoring pass restricted
    /// to the same candidates.
    pub scores: Vec<f64>,
    /// Total unselected candidates in the graph, for blast-radius
    /// accounting (`candidates.len() / candidate_pool` is the fraction
    /// of scoring work the localization saved).
    pub candidate_pool: usize,
}

/// Re-scores the unselected candidate edges whose standing the
/// perturbation of `edge` can affect: those with an endpoint in the
/// partition(s) of `edge`'s endpoints, under `psp`'s partition
/// assignment and stitched spanning tree.
///
/// `beta` and `threads` follow the sparsifier configuration
/// ([`crate::SparsifyConfig::beta_value`] /
/// [`crate::SparsifyConfig::threads_value`]); scoring is bit-identical
/// at every thread count.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when `edge` is out of bounds;
/// [`CoreError::Graph`] when the stitched tree is inconsistent with
/// `g` (wrong graph for this sparsifier).
pub fn rescore_affected_partition(
    g: &Graph,
    psp: &PartitionedSparsifier,
    edge: usize,
    beta: usize,
    threads: usize,
) -> Result<Rescore, CoreError> {
    if edge >= g.num_edges() {
        return Err(CoreError::InvalidConfig {
            what: format!("edge {edge} out of bounds for {} edges", g.num_edges()),
        });
    }
    let sp = psp.sparsifier();
    let tree_edges = &sp.edge_ids()[..sp.tree_edge_count()];
    if tree_edges.contains(&edge) {
        return Ok(Rescore::TreeEdge);
    }
    let _span = tracered_obs::span!("rescore.partition", { edge: edge });

    let assignment = psp.assignment();
    let e = g.edge(edge);
    let mut parts = vec![assignment[e.u]];
    if assignment[e.v] != assignment[e.u] {
        parts.push(assignment[e.v]);
    }
    parts.sort_unstable();

    let mut selected = vec![false; g.num_edges()];
    for &id in sp.edge_ids() {
        selected[id] = true;
    }
    let mut candidate_pool = 0usize;
    let mut candidates = Vec::new();
    for (id, &is_selected) in selected.iter().enumerate() {
        if is_selected || id == edge {
            continue;
        }
        candidate_pool += 1;
        let c = g.edge(id);
        if parts.contains(&assignment[c.u]) || parts.contains(&assignment[c.v]) {
            candidates.push(id);
        }
    }

    let scores = if candidates.is_empty() {
        Vec::new()
    } else {
        score_on_stitched_tree(g, tree_edges, &candidates, beta, threads)?
    };
    Ok(Rescore::Localized(RescoreReport { parts, candidates, scores, candidate_pool }))
}

/// The shared scoring kernel: resistances and phase scores of
/// `candidates` against the sparsifier's stitched spanning tree —
/// exactly the boundary-scoring pipeline of
/// [`crate::sparsify_partitioned`], so localized and full scoring agree
/// bit for bit on common candidates.
fn score_on_stitched_tree(
    g: &Graph,
    tree_edges: &[usize],
    candidates: &[usize],
    beta: usize,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    let tree = RootedTree::build(g, tree_edges, heaviest_node(g))?;
    let pairs: Vec<(usize, usize)> =
        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = tree_resistances_threads(&tree, &pairs, threads);
    Ok(tree_phase_scores_threads(g, &tree, candidates, &rs, beta, threads))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::partitioned::{sparsify_partitioned, PartitionedConfig};
    use tracered_graph::gen::{grid2d, WeightProfile};

    fn setup() -> (Graph, PartitionedSparsifier) {
        let g = grid2d(12, 12, WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 11);
        let psp = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
        (g, psp)
    }

    fn first_offtree_edge(g: &Graph, psp: &PartitionedSparsifier) -> usize {
        let sp = psp.sparsifier();
        let mut selected = vec![false; g.num_edges()];
        for &id in &sp.edge_ids()[..sp.tree_edge_count()] {
            selected[id] = true;
        }
        (0..g.num_edges()).find(|&id| !selected[id]).expect("an off-tree edge exists")
    }

    #[test]
    fn localized_scores_match_full_scoring_bitwise() {
        let (g, psp) = setup();
        let edge = first_offtree_edge(&g, &psp);
        let report = match rescore_affected_partition(&g, &psp, edge, 2, 1).unwrap() {
            Rescore::Localized(r) => r,
            Rescore::TreeEdge => panic!("picked an off-tree edge"),
        };
        assert!(!report.candidates.is_empty());

        // Full scoring of *all* unselected candidates on the same tree.
        let sp = psp.sparsifier();
        let tree_edges = &sp.edge_ids()[..sp.tree_edge_count()];
        let mut selected = vec![false; g.num_edges()];
        for &id in sp.edge_ids() {
            selected[id] = true;
        }
        let all: Vec<usize> =
            (0..g.num_edges()).filter(|&id| !selected[id] && id != edge).collect();
        let full = score_on_stitched_tree(&g, tree_edges, &all, 2, 1).unwrap();

        for (slot, &cand) in report.candidates.iter().enumerate() {
            let k = all.iter().position(|&id| id == cand).unwrap();
            assert_eq!(
                report.scores[slot].to_bits(),
                full[k].to_bits(),
                "localized score of edge {cand} must equal the full pass bitwise"
            );
        }
    }

    #[test]
    fn blast_radius_is_contained_to_affected_parts() {
        let (g, psp) = setup();
        let edge = first_offtree_edge(&g, &psp);
        let report = match rescore_affected_partition(&g, &psp, edge, 2, 1).unwrap() {
            Rescore::Localized(r) => r,
            Rescore::TreeEdge => panic!("picked an off-tree edge"),
        };
        let assignment = psp.assignment();
        for &cand in &report.candidates {
            let c = g.edge(cand);
            assert!(
                report.parts.contains(&assignment[c.u]) || report.parts.contains(&assignment[c.v]),
                "candidate {cand} is outside the affected partitions"
            );
        }
        // With 4 parts the localization must actually drop candidates.
        assert!(report.candidates.len() < report.candidate_pool);
    }

    #[test]
    fn scores_are_thread_invariant() {
        let (g, psp) = setup();
        let edge = first_offtree_edge(&g, &psp);
        let r1 = match rescore_affected_partition(&g, &psp, edge, 2, 1).unwrap() {
            Rescore::Localized(r) => r,
            Rescore::TreeEdge => unreachable!(),
        };
        let r4 = match rescore_affected_partition(&g, &psp, edge, 2, 4).unwrap() {
            Rescore::Localized(r) => r,
            Rescore::TreeEdge => unreachable!(),
        };
        assert_eq!(r1.candidates, r4.candidates);
        let b1: Vec<u64> = r1.scores.iter().map(|s| s.to_bits()).collect();
        let b4: Vec<u64> = r4.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(b1, b4);
    }

    #[test]
    fn tree_edge_perturbation_reports_global_blast_radius() {
        let (g, psp) = setup();
        let tree_edge = psp.sparsifier().edge_ids()[0];
        let outcome = rescore_affected_partition(&g, &psp, tree_edge, 2, 1).unwrap();
        assert!(matches!(outcome, Rescore::TreeEdge));
    }

    #[test]
    fn out_of_bounds_edge_is_a_typed_error() {
        let (g, psp) = setup();
        let err = rescore_affected_partition(&g, &psp, g.num_edges(), 2, 1).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }
}
