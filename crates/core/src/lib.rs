//! Graph spectral sparsification via **approximate trace reduction** —
//! a from-scratch reproduction of Liu & Yu, *"Pursuing More Effective
//! Graph Spectral Sparsifiers via Approximate Trace Reduction"*, DAC 2022.
//!
//! # The algorithm in one paragraph
//!
//! A spectral sparsifier `P` of a graph `G` is an ultra-sparse subgraph
//! whose Laplacian preconditions `L_G` well — i.e. the relative condition
//! number `κ(L_G, L_P)` is small. Since
//! `κ(L_G, L_P) = λ_max(L_P⁻¹ L_G) ≤ Trace(L_P⁻¹ L_G)` (all generalized
//! eigenvalues are ≥ 1 once both Laplacians share a small diagonal shift),
//! the paper proposes ranking each off-subgraph edge by how much its
//! recovery *reduces that trace* — an exact Sherman–Morrison quantity
//! (its Eq. 11) — and makes the metric affordable with two tricks:
//! a physics-inspired **β-layer truncation** of the inner summation
//! (Eq. 12), and a structure-aware **sparse approximate inverse of the
//! Cholesky factor** (Algorithm 1) for scoring against general subgraphs.
//! The sparsifier is grown from a low-stretch spanning tree by iterative
//! densification with feGRASS-style exclusion of spectrally similar edges
//! (Algorithm 2).
//!
//! # Quick start
//!
//! ```
//! use tracered_core::{sparsify, Method, SparsifyConfig};
//! use tracered_graph::gen::{grid2d, WeightProfile};
//!
//! # fn main() -> Result<(), tracered_core::CoreError> {
//! let g = grid2d(20, 20, WeightProfile::Unit, 7);
//! let cfg = SparsifyConfig::new(Method::TraceReduction);
//! let sp = sparsify(&g, &cfg)?;
//! // Tree plus ~10% |V| recovered off-tree edges.
//! assert!(sp.edge_ids().len() >= g.num_nodes() - 1);
//! # Ok(())
//! # }
//! ```
//!
//! The [`metrics`] module estimates `κ(L_G, L_P)` and the trace proxy, and
//! the [`exact`] module provides dense oracles used by the test suite to
//! validate every approximation in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[warn(clippy::unwrap_used)]
pub mod config;
pub mod criticality;
pub mod error;
pub mod exact;
pub mod grass;
pub mod jl;
pub mod metrics;
#[warn(clippy::unwrap_used)]
pub mod partitioned;
#[warn(clippy::unwrap_used)]
pub mod rescore;
pub mod similarity;
#[warn(clippy::unwrap_used)]
pub mod sparsify;
mod workspace;

pub use config::{Method, SparsifyConfig};
pub use error::CoreError;
pub use partitioned::{
    sparsify_partitioned, BoundaryPolicy, PartitionStats, PartitionedConfig, PartitionedReport,
    PartitionedSparsifier,
};
pub use rescore::{rescore_affected_partition, Rescore, RescoreReport};
pub use sparsify::{sparsify, IterationStats, Sparsifier, SparsifyReport};

// Shared-handle audit: the service layer keeps `Arc<Sparsifier>` handles
// alive across epochs and hands them to concurrent request handlers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Sparsifier>();
    assert_send_sync::<SparsifyConfig>();
};
