//! Partition-parallel sparsification: k-way domain decomposition with
//! concurrent per-partition densification.
//!
//! [`sparsify`] iterates score → recover → refactor on one global
//! subgraph, so on large meshes the serial subgraph factorization
//! dominates wall time even with the parallel scoring engine. This module
//! breaks that bottleneck by decomposing the problem:
//!
//! 1. k-way partition the graph by recursive spectral bisection
//!    ([`tracered_partition::recursive_bisection`]);
//! 2. extract each part's induced subgraph with local↔global index maps
//!    ([`tracered_partition::KWayPartition::extract_subgraphs`]);
//! 3. run the **full densification loop** — spanning tree, criticality
//!    scoring, recovery, local Cholesky refactorization — on every
//!    partition concurrently ([`tracered_par::par_jobs`]), each under the
//!    global shift vector restricted to its nodes; with
//!    [`SparsifyConfig::factor_threads`] > 1 the local factorizations
//!    additionally split their elimination trees across pool workers
//!    *inside* each partition job (nested parallel regions);
//! 4. stitch the per-partition sparsifiers back together: partition
//!    spanning forests are joined into one global spanning tree by
//!    maximum-weight boundary connectors, and the remaining boundary
//!    edges are handled by a [`BoundaryPolicy`] — kept wholesale, or
//!    criticality-scored against the stitched tree with the same
//!    β-truncated trace-reduction metric the main driver uses.
//!
//! Results are deterministic for a fixed seed at every thread count: the
//! per-partition runs are independent jobs with disjoint outputs, and
//! every scoring kernel is bit-identical across thread counts.

use std::time::Duration;

use tracered_obs::Timer;

use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::lca::tree_resistances_threads;
use tracered_graph::mst::spanning_tree;
use tracered_graph::{Graph, GraphError, RootedTree, UnionFind};
use tracered_partition::{recursive_bisection_threads, EdgeCut, PartitionPiece};

use crate::config::SparsifyConfig;
use crate::criticality::tree_phase_scores_threads;
use crate::error::CoreError;
use crate::sparsify::{sparsify, IterationStats, Sparsifier, SparsifyReport};

/// What happens to the boundary (cut) edges when the per-partition
/// sparsifiers are stitched together.
///
/// Edges needed to connect the partition spanning forests into one global
/// spanning tree ("connectors", chosen greedily by descending weight) are
/// always kept; the policy governs the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BoundaryPolicy {
    /// Keep every boundary edge. Guarantees the stitched sparsifier
    /// contains the full separator structure, at the cost of
    /// `O(edge cut)` extra edges.
    KeepAll,
    /// Score the **separator zone** — the non-connector boundary edges
    /// plus every unselected edge incident to a separator node (the
    /// region where the local scorers were blind to cross-partition
    /// coupling) — against the stitched global tree with the β-truncated
    /// trace-reduction metric, and keep the top
    /// `fraction · |separator nodes|` of them: the analog of the main
    /// driver's `α·|V|` budget, applied to the separator.
    Scored {
        /// Recovery budget as a fraction of the separator node count.
        fraction: f64,
    },
}

impl Default for BoundaryPolicy {
    fn default() -> Self {
        // One recovered edge per separator node. The separator is where
        // the local scorers were blind, so it needs a far denser budget
        // than the interior's α = 0.10: at 1.0 the stitched κ tracks the
        // global driver within a few percent on 27k-node grids (and often
        // beats it on small meshes) for ~1-2% more edges, while 0.5
        // already drifts to 2× and 0.10 past 3× by k = 8 — see the
        // fraction sweep in the PR 3 notes.
        BoundaryPolicy::Scored { fraction: 1.0 }
    }
}

/// Configuration for [`sparsify_partitioned`].
///
/// Wraps a [`SparsifyConfig`] (applied to every partition) with the
/// decomposition knobs. The base config's `threads` knob controls the
/// **outer** parallelism — how many partitions densify concurrently —
/// while the per-partition runs stay on the exact serial scoring path,
/// so nested parallel regions never oversubscribe the machine. The
/// `factor_threads` knob is the exception: it parallelizes the local
/// Cholesky factorizations *within* each partition job (bit-identical
/// to serial, so stitched edge sets are unchanged), which composes
/// safely because pool regions work-steal rather than spawn.
///
/// # Example
///
/// ```
/// use tracered_core::{sparsify_partitioned, PartitionedConfig};
/// use tracered_graph::gen::{grid2d, WeightProfile};
///
/// # fn main() -> Result<(), tracered_core::CoreError> {
/// let g = grid2d(12, 10, WeightProfile::Unit, 1);
/// let cfg = PartitionedConfig::new(4).threads(Some(2));
/// let psp = sparsify_partitioned(&g, &cfg)?;
/// assert!(psp.sparsifier().edge_ids().len() >= g.num_nodes() - 1);
/// assert_eq!(psp.partition_report().parts, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedConfig {
    base: SparsifyConfig,
    parts: usize,
    fiedler_steps: usize,
    boundary: BoundaryPolicy,
}

impl PartitionedConfig {
    /// Creates a configuration densifying `parts` partitions with the
    /// paper-default [`SparsifyConfig`] in each.
    pub fn new(parts: usize) -> Self {
        PartitionedConfig {
            base: SparsifyConfig::default(),
            parts,
            fiedler_steps: 8,
            boundary: BoundaryPolicy::default(),
        }
    }

    /// Replaces the per-partition sparsification configuration.
    pub fn base(mut self, base: SparsifyConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets the boundary-edge policy (default: scored, fraction 1.0).
    pub fn boundary(mut self, policy: BoundaryPolicy) -> Self {
        self.boundary = policy;
        self
    }

    /// Inverse-power steps per spectral bisection level (default 8).
    pub fn fiedler_steps(mut self, steps: usize) -> Self {
        self.fiedler_steps = steps;
        self
    }

    /// Outer worker threads — forwarded to the base config's `threads`
    /// knob (`Some(1)` serial, `None` auto-detect).
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.base = self.base.threads(threads);
        self
    }

    /// Factorization worker threads — forwarded to the base config's
    /// [`SparsifyConfig::factor_threads`] knob. Unlike the scoring
    /// `threads` knob (which the per-partition runs pin to 1 so the
    /// outer fan-out is the only chunk-parallel region), this one
    /// reaches **inside** each partition job: the per-iteration local
    /// Cholesky factorizations split their elimination trees across
    /// pool workers, composing with the outer `par_jobs` region through
    /// the pool's nested-region work stealing. Also used by the spectral
    /// partitioner's own full-size `DirectSolver` factorization.
    pub fn factor_threads(mut self, threads: Option<usize>) -> Self {
        self.base = self.base.factor_threads(threads);
        self
    }

    /// The per-partition sparsification configuration.
    pub fn base_config(&self) -> &SparsifyConfig {
        &self.base
    }

    /// The configured part count.
    pub fn parts_value(&self) -> usize {
        self.parts
    }

    /// The configured per-level inverse-power step count.
    pub fn fiedler_steps_value(&self) -> usize {
        self.fiedler_steps
    }

    /// The configured boundary policy.
    pub fn boundary_value(&self) -> BoundaryPolicy {
        self.boundary
    }

    /// Validates parameter ranges (including the wrapped base config).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when a value is out of range.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.parts == 0 {
            return Err(CoreError::InvalidConfig { what: "parts must be at least 1".into() });
        }
        if self.fiedler_steps == 0 {
            return Err(CoreError::InvalidConfig {
                what: "fiedler_steps must be at least 1".into(),
            });
        }
        if let BoundaryPolicy::Scored { fraction } = self.boundary {
            if !fraction.is_finite() || fraction < 0.0 {
                return Err(CoreError::InvalidConfig {
                    what: format!("boundary fraction {fraction} must be finite and >= 0"),
                });
            }
        }
        self.base.validate()
    }
}

/// One partition's densification diagnostics.
#[derive(Debug, Clone)]
pub struct PartitionStats {
    /// Part index (`0..k`).
    pub part: usize,
    /// Nodes in the partition.
    pub nodes: usize,
    /// Internal (non-boundary) edges of the partition.
    pub internal_edges: usize,
    /// Connected components the local densification ran on (pieces of a
    /// partition disconnected by the cut are sparsified independently).
    pub components: usize,
    /// Components whose densification loop failed numerically and were
    /// re-solved exactly (all local edges kept) instead of aborting the
    /// whole run.
    pub degraded_components: usize,
    /// The partition's own sparsification report (per-component reports
    /// merged by iteration index).
    pub report: SparsifyReport,
}

/// Diagnostics of a partitioned sparsification run, alongside the merged
/// [`SparsifyReport`] embedded in the stitched [`Sparsifier`].
#[derive(Debug, Clone)]
pub struct PartitionedReport {
    /// Parts the graph was decomposed into (may be fewer than requested
    /// on tiny graphs).
    pub parts: usize,
    /// Resolved outer worker-thread count.
    pub threads: usize,
    /// Edge-cut quality of the decomposition.
    pub cut: EdgeCut,
    /// Load-balance ratio (1.0 = perfectly balanced parts).
    pub balance_ratio: f64,
    /// Time spent in recursive spectral bisection + subgraph extraction.
    pub partition_time: Duration,
    /// Wall-clock time of the concurrent per-partition densification.
    pub densify_time: Duration,
    /// Time spent stitching: connector selection plus boundary scoring.
    pub stitch_time: Duration,
    /// Boundary edges promoted into the stitched spanning tree.
    pub connector_edges: usize,
    /// Candidates considered by the boundary policy: the non-connector
    /// cut edges under [`BoundaryPolicy::KeepAll`]; the whole separator
    /// zone (those cut edges **plus** unselected edges incident to a
    /// separator node) under [`BoundaryPolicy::Scored`].
    pub boundary_candidates: usize,
    /// Candidates recovered by the policy (excluding connectors; under
    /// the scored policy this may include non-cut separator-zone edges).
    pub boundary_recovered: usize,
    /// Partitions containing at least one degraded component (see
    /// [`PartitionStats::degraded_components`]) — 0 on healthy runs.
    pub degraded_partitions: usize,
    /// Per-partition diagnostics, in part order.
    pub per_partition: Vec<PartitionStats>,
}

/// A sparsifier produced by [`sparsify_partitioned`]: the stitched global
/// [`Sparsifier`] plus the decomposition diagnostics.
#[derive(Debug, Clone)]
pub struct PartitionedSparsifier {
    sparsifier: Sparsifier,
    partition_report: PartitionedReport,
    assignment: Vec<usize>,
}

impl PartitionedSparsifier {
    /// The stitched global sparsifier (its [`Sparsifier::report`] merges
    /// the per-partition iteration stats plus a final boundary phase).
    pub fn sparsifier(&self) -> &Sparsifier {
        &self.sparsifier
    }

    /// Unwraps the stitched sparsifier.
    pub fn into_sparsifier(self) -> Sparsifier {
        self.sparsifier
    }

    /// Decomposition and stitching diagnostics.
    pub fn partition_report(&self) -> &PartitionedReport {
        &self.partition_report
    }

    /// Part index per node.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }
}

/// Outcome of one partition's local densification, in global edge ids.
struct PartResult {
    tree_edges: Vec<usize>,
    recovered: Vec<usize>,
    components: usize,
    degraded: usize,
    report: SparsifyReport,
}

/// Runs partition-parallel sparsification (see the module docs).
///
/// The stitched sparsifier targets the same quality envelope as the
/// global [`sparsify`] on the same graph: with the default scored
/// boundary policy, its relative condition number stays within a small
/// constant factor (documented tolerance **2×**, observed ≤ ~1.3× on
/// the mesh test suite — see `crates/core/tests/partitioned_quality.rs`)
/// of the unpartitioned result, while the factorization work splits into
/// k independent local problems.
///
/// ```
/// use tracered_core::{sparsify_partitioned, PartitionedConfig};
/// use tracered_graph::gen::{grid2d, WeightProfile};
///
/// let g = grid2d(24, 16, WeightProfile::Unit, 7);
/// // 4 partitions, densified concurrently on up to 2 pool threads; the
/// // stitched edge set is identical at every thread count.
/// let cfg = PartitionedConfig::new(4).threads(Some(2));
/// let psp = sparsify_partitioned(&g, &cfg)?;
/// let sp = psp.sparsifier();
/// assert!(sp.edge_ids().len() >= g.num_nodes() - 1);
/// assert!(psp.partition_report().cut.count > 0);
/// # Ok::<(), tracered_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for out-of-range parameters,
/// [`CoreError::Graph`] for empty or disconnected inputs, and
/// [`CoreError::Sparse`] if a partition-level factorization or the
/// spectral bisection fails.
pub fn sparsify_partitioned(
    g: &Graph,
    cfg: &PartitionedConfig,
) -> Result<PartitionedSparsifier, CoreError> {
    cfg.validate()?;
    let n = g.num_nodes();
    if n == 0 {
        return Err(GraphError::EmptyGraph.into());
    }
    if !g.is_connected() {
        return Err(GraphError::Disconnected { components: g.num_components() }.into());
    }
    let threads = tracered_par::effective_threads(cfg.base.threads_value());
    let factor_threads = tracered_par::effective_threads(cfg.base.factor_threads_value());
    // Timers feed the report fields below and double as spans when
    // tracing is on — the report and the trace share one measurement.
    let t_start = Timer::start_with(
        "partitioned.sparsify",
        &[("n", n as f64), ("parts", cfg.parts.min(n) as f64)],
    );

    // --- Decompose. ---
    let t0 = Timer::start("partitioned.partition");
    let k = cfg.parts.min(n);
    let kw =
        recursive_bisection_threads(g, k, cfg.fiedler_steps, cfg.base.seed_value(), factor_threads)
            .map_err(CoreError::Sparse)?;
    let subs = kw.extract_subgraphs(g);
    let cut = kw.edge_cut(g);
    let balance_ratio = kw.balance_ratio();
    let partition_time = t0.stop();

    let shifts = cfg.base.shift_value().shifts(g)?;

    // --- Densify every partition concurrently. ---
    // Each job owns one output slot; the local runs use the exact serial
    // scoring path (threads = 1), so the outer fan-out is the only
    // parallel region and results are thread-count invariant.
    let t0 = Timer::start("partitioned.densify");
    let mut slots: Vec<Option<Result<PartResult, CoreError>>> = Vec::new();
    slots.resize_with(subs.pieces.len(), || None);
    let jobs: Vec<(&PartitionPiece, &mut Option<Result<PartResult, CoreError>>)> =
        subs.pieces.iter().zip(slots.iter_mut()).collect();
    tracered_par::par_jobs(jobs, threads, |(piece, slot)| {
        *slot = Some(densify_piece(piece, &shifts, cfg));
    });
    let mut part_results = Vec::with_capacity(subs.pieces.len());
    for slot in slots {
        part_results.push(slot.expect("every partition job ran")?);
    }
    let densify_time = t0.stop();

    // --- Stitch. ---
    let t0 = Timer::start("partitioned.stitch");
    let mut tree_edges: Vec<usize> = Vec::with_capacity(n.saturating_sub(1));
    for pr in &part_results {
        tree_edges.extend_from_slice(&pr.tree_edges);
    }
    let mut uf = UnionFind::new(n);
    for &id in &tree_edges {
        let e = g.edge(id);
        uf.union(e.u, e.v);
    }
    // Connectors: maximum-weight greedy join of the partition forests
    // into one global spanning tree (ties broken by edge id).
    let mut by_weight = subs.boundary_edges.clone();
    by_weight
        .sort_by(|&a, &b| g.edge(b).weight.total_cmp(&g.edge(a).weight).then_with(|| a.cmp(&b)));
    let mut is_connector = vec![false; g.num_edges()];
    let mut connectors = Vec::new();
    for &id in &by_weight {
        let e = g.edge(id);
        if uf.union(e.u, e.v) {
            is_connector[id] = true;
            connectors.push(id);
        }
    }
    tree_edges.extend_from_slice(&connectors);
    debug_assert_eq!(tree_edges.len(), n - 1, "stitched forest must span a connected graph");
    let tree_edge_count = tree_edges.len();

    // Boundary policy for the remaining cut edges. The scored policy
    // widens the candidate pool to the whole separator zone: edges the
    // per-partition runs did not select whose endpoint touches the
    // separator — exactly where the local scorers could not see the
    // cross-partition coupling.
    let candidates: Vec<usize> = match cfg.boundary {
        BoundaryPolicy::KeepAll => {
            subs.boundary_edges.iter().copied().filter(|&id| !is_connector[id]).collect()
        }
        BoundaryPolicy::Scored { .. } => {
            let mut selected = is_connector.clone();
            for pr in &part_results {
                for &id in pr.tree_edges.iter().chain(pr.recovered.iter()) {
                    selected[id] = true;
                }
            }
            let mut on_separator = vec![false; n];
            for &v in &subs.separator_nodes {
                on_separator[v] = true;
            }
            (0..g.num_edges())
                .filter(|&id| {
                    let e = g.edge(id);
                    !selected[id] && (on_separator[e.u] || on_separator[e.v])
                })
                .collect()
        }
    };
    let t_boundary = Timer::start("partitioned.boundary");
    let (boundary_recovered, boundary_scored) = match cfg.boundary {
        BoundaryPolicy::KeepAll => (candidates.clone(), 0),
        BoundaryPolicy::Scored { fraction } => {
            let quota = ((fraction * subs.separator_nodes.len() as f64).round() as usize)
                .min(candidates.len());
            if quota == 0 || candidates.is_empty() {
                // No scoring ran, so none of the candidates count as
                // scored in the boundary pseudo-iteration.
                (Vec::new(), 0)
            } else {
                let tree = RootedTree::build(g, &tree_edges, crate::sparsify::heaviest_node(g))?;
                let pairs: Vec<(usize, usize)> =
                    candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
                let rs = tree_resistances_threads(&tree, &pairs, threads);
                let scores = tree_phase_scores_threads(
                    g,
                    &tree,
                    &candidates,
                    &rs,
                    cfg.base.beta_value(),
                    threads,
                );
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_unstable_by(|&a, &b| {
                    scores[b].total_cmp(&scores[a]).then_with(|| candidates[a].cmp(&candidates[b]))
                });
                let picked: Vec<usize> = order[..quota].iter().map(|&ci| candidates[ci]).collect();
                (picked, candidates.len())
            }
        }
    };
    let boundary_time = t_boundary.stop();
    let stitch_time = t0.stop();

    // --- Assemble the stitched sparsifier + merged report. ---
    let mut edge_ids = tree_edges;
    for pr in &part_results {
        edge_ids.extend_from_slice(&pr.recovered);
    }
    edge_ids.extend_from_slice(&boundary_recovered);

    let mut iterations =
        merge_iterations(part_results.iter().map(|pr| &pr.report), threads, factor_threads);
    // The boundary phase is reported as one final pseudo-iteration so the
    // merged report still accounts for every recovered edge.
    if boundary_scored > 0 || !boundary_recovered.is_empty() {
        iterations.push(IterationStats {
            iteration: iterations.len() + 1,
            scored: boundary_scored,
            recovered: boundary_recovered.len(),
            excluded_skips: 0,
            factor_time: Duration::ZERO,
            score_time: boundary_time,
            spai_nnz: 0,
            trace_estimate: None,
            threads,
            factor_threads,
            pool_size: tracered_par::global_pool_size(),
            applied_shift: 0.0,
        });
    }
    let budget: usize =
        part_results.iter().map(|pr| pr.report.budget).sum::<usize>() + boundary_recovered.len();
    let report = SparsifyReport {
        method: cfg.base.method(),
        total_time: t_start.stop(),
        tree_time: part_results.iter().map(|pr| pr.report.tree_time).sum(),
        budget,
        degraded_fallbacks: part_results.iter().map(|pr| pr.degraded).sum(),
        iterations,
    };
    let per_partition = subs
        .pieces
        .iter()
        .zip(part_results.iter())
        .map(|(piece, pr)| PartitionStats {
            part: piece.part,
            nodes: piece.graph.num_nodes(),
            internal_edges: piece.graph.num_edges(),
            components: pr.components,
            degraded_components: pr.degraded,
            report: pr.report.clone(),
        })
        .collect();
    let partition_report = PartitionedReport {
        parts: kw.parts,
        threads,
        cut,
        balance_ratio,
        partition_time,
        densify_time,
        stitch_time,
        connector_edges: connectors.len(),
        boundary_candidates: candidates.len(),
        boundary_recovered: boundary_recovered.len(),
        degraded_partitions: part_results.iter().filter(|pr| pr.degraded > 0).count(),
        per_partition,
    };
    Ok(PartitionedSparsifier {
        sparsifier: Sparsifier::from_parts(edge_ids, tree_edge_count, shifts, report),
        partition_report,
        assignment: kw.assignment,
    })
}

/// Densifies one partition piece: every connected component of the piece
/// (the cut may disconnect a part internally) runs the full serial
/// [`sparsify`] loop under the global shift restricted to its nodes, and
/// the selected local edges are mapped back to global ids.
fn densify_piece(
    piece: &PartitionPiece,
    global_shifts: &[f64],
    cfg: &PartitionedConfig,
) -> Result<PartResult, CoreError> {
    let _span = tracered_obs::span!("partitioned.part", {
        part: piece.part,
        nodes: piece.graph.num_nodes(),
    });
    // Per-partition seed: decorrelates stochastic scoring probes across
    // partitions while staying deterministic.
    let seed = cfg.base.seed_value() ^ (piece.part as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut components = piece.graph.components();
    // components() orders by size; re-sort by smallest node id so the
    // output edge order is independent of internal traversal order.
    for comp in &mut components {
        comp.sort_unstable();
    }
    components.sort_by_key(|c| c[0]);
    let mut tree_edges = Vec::new();
    let mut recovered = Vec::new();
    let mut reports = Vec::new();
    let mut degraded = 0usize;
    let whole_piece = components.len() == 1;
    for comp in &components {
        if comp.len() < 2 {
            continue; // isolated within the piece; connectors reattach it
        }
        // Connected piece (the common case): densify it in place; only a
        // cut-disconnected piece pays for component extraction.
        let extracted =
            if whole_piece { None } else { Some(piece.graph.induced_subgraph_with_edges(comp)) };
        let (local_graph, local_shifts): (&Graph, Vec<f64>) = match &extracted {
            None => (&piece.graph, piece.nodes.iter().map(|&gv| global_shifts[gv]).collect()),
            Some((sub, nodes, _)) => {
                (sub, nodes.iter().map(|&v| global_shifts[piece.nodes[v]]).collect())
            }
        };
        let local_cfg =
            cfg.base.clone().shift(ShiftPolicy::PerNode(local_shifts)).threads(Some(1)).seed(seed);
        let to_global = |local: usize| -> usize {
            let piece_local = match &extracted {
                Some((_, _, map)) => map[local],
                None => local,
            };
            piece.edges[piece_local]
        };
        match sparsify(local_graph, &local_cfg) {
            Ok(sp) => {
                let ids = sp.edge_ids();
                tree_edges.extend(ids[..sp.tree_edge_count()].iter().map(|&e| to_global(e)));
                recovered.extend(ids[sp.tree_edge_count()..].iter().map(|&e| to_global(e)));
                reports.push(sp.report().clone());
            }
            Err(CoreError::Sparse(_)) => {
                // Numerical failure in this component's densification
                // loop (e.g. a factorization the shift ladder could not
                // rescue): degrade to the exact local subgraph — a
                // spanning tree plus *every* off-tree edge — instead of
                // killing the whole partitioned run. Denser than
                // requested, but spectrally exact, and recorded in the
                // degradation counters.
                let t_fallback = Timer::start("partitioned.fallback");
                let t_tree = Timer::start("sparsify.tree");
                let st = spanning_tree(local_graph, cfg.base.tree_kind_value())?;
                // The tree phase is timed separately: the fallback's
                // total also covers mapping every kept edge back to
                // global ids, so the two fields are distinct measurements
                // (previously both were assigned the full elapsed time).
                let tree_time = t_tree.stop();
                let kept = st.off_tree_edges.len();
                tree_edges.extend(st.tree_edges.iter().map(|&e| to_global(e)));
                recovered.extend(st.off_tree_edges.iter().map(|&e| to_global(e)));
                degraded += 1;
                reports.push(SparsifyReport {
                    method: cfg.base.method(),
                    total_time: t_fallback.stop(),
                    tree_time,
                    budget: kept,
                    degraded_fallbacks: 1,
                    // One pseudo-iteration keeps the merged report's
                    // recovered-edge accounting exact.
                    iterations: vec![IterationStats {
                        iteration: 1,
                        scored: kept,
                        recovered: kept,
                        excluded_skips: 0,
                        factor_time: Duration::ZERO,
                        score_time: Duration::ZERO,
                        spai_nnz: 0,
                        trace_estimate: None,
                        threads: 1,
                        factor_threads: 1,
                        pool_size: tracered_par::global_pool_size(),
                        applied_shift: 0.0,
                    }],
                });
            }
            Err(e) => return Err(e),
        }
    }
    // Local scoring is pinned serial; factorizations inside the job may
    // still fan out through the nested-region pool support.
    let threads = 1;
    let factor_threads = tracered_par::effective_threads(cfg.base.factor_threads_value());
    let merged = SparsifyReport {
        method: cfg.base.method(),
        total_time: reports.iter().map(|r| r.total_time).sum(),
        tree_time: reports.iter().map(|r| r.tree_time).sum(),
        budget: reports.iter().map(|r| r.budget).sum(),
        degraded_fallbacks: degraded,
        iterations: merge_iterations(reports.iter(), threads, factor_threads),
    };
    Ok(PartResult { tree_edges, recovered, components: components.len(), degraded, report: merged })
}

/// Merges per-source iteration stats by iteration index: counts and
/// times are summed (times are aggregate CPU time — the sources ran
/// concurrently), trace estimates sum when present anywhere (the trace
/// of a block decomposition is additive over blocks).
fn merge_iterations<'a>(
    reports: impl Iterator<Item = &'a SparsifyReport>,
    threads: usize,
    factor_threads: usize,
) -> Vec<IterationStats> {
    let reports: Vec<&SparsifyReport> = reports.collect();
    let mut merged: Vec<IterationStats> = Vec::new();
    // Trace estimates contributed per iteration index: a block sum is
    // only meaningful when *every* source reported one at that index
    // (a source that converged early would otherwise make the partial
    // sum read as a spurious trace drop).
    let mut trace_sources: Vec<usize> = Vec::new();
    for report in &reports {
        for (i, it) in report.iterations.iter().enumerate() {
            if merged.len() <= i {
                merged.push(IterationStats {
                    iteration: i + 1,
                    scored: 0,
                    recovered: 0,
                    excluded_skips: 0,
                    factor_time: Duration::ZERO,
                    score_time: Duration::ZERO,
                    spai_nnz: 0,
                    trace_estimate: None,
                    threads,
                    factor_threads,
                    pool_size: tracered_par::global_pool_size(),
                    applied_shift: 0.0,
                });
                trace_sources.push(0);
            }
            let m = &mut merged[i];
            m.scored += it.scored;
            m.recovered += it.recovered;
            m.excluded_skips += it.excluded_skips;
            m.factor_time += it.factor_time;
            m.score_time += it.score_time;
            m.spai_nnz += it.spai_nnz;
            // The merged shift is the worst (largest) boost any source
            // needed at this iteration index.
            if it.applied_shift > m.applied_shift {
                m.applied_shift = it.applied_shift;
            }
            if let Some(t) = it.trace_estimate {
                *m.trace_estimate.get_or_insert(0.0) += t;
                trace_sources[i] += 1;
            }
        }
    }
    for (m, &sources) in merged.iter_mut().zip(trace_sources.iter()) {
        if sources != reports.len() {
            m.trace_estimate = None;
        }
    }
    merged
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::Method;
    use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};

    #[test]
    fn stitched_sparsifier_is_a_connected_spanning_subgraph() {
        let g = tri_mesh(14, 10, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 3);
        let psp = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
        let sp = psp.sparsifier();
        assert_eq!(sp.tree_edge_count(), g.num_nodes() - 1);
        assert!(sp.as_graph(&g).is_connected());
        let mut ids = sp.edge_ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sp.edge_ids().len(), "stitched edges must be unique");
    }

    #[test]
    fn partition_report_is_consistent() {
        let g = grid2d(14, 12, WeightProfile::Unit, 5);
        let psp = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
        let pr = psp.partition_report();
        assert_eq!(pr.parts, 4);
        assert!(pr.cut.count > 0 && pr.cut.weight > 0.0);
        assert!(pr.balance_ratio >= 1.0 && pr.balance_ratio < 1.5);
        assert_eq!(pr.per_partition.len(), 4);
        let part_nodes: usize = pr.per_partition.iter().map(|p| p.nodes).sum();
        assert_eq!(part_nodes, g.num_nodes());
        // Connectors join k forests into one tree: at least k-1 of them.
        assert!(pr.connector_edges >= pr.parts - 1);
        assert_eq!(psp.assignment().len(), g.num_nodes());
        // The merged report accounts for every recovered edge.
        let sp = psp.sparsifier();
        let recovered: usize = sp.report().iterations.iter().map(|i| i.recovered).sum();
        assert_eq!(recovered, sp.num_recovered());
    }

    #[test]
    fn keep_all_boundary_retains_every_cut_edge() {
        let g = grid2d(12, 10, WeightProfile::Unit, 2);
        let cfg = PartitionedConfig::new(4).boundary(BoundaryPolicy::KeepAll);
        let psp = sparsify_partitioned(&g, &cfg).unwrap();
        let pr = psp.partition_report();
        assert_eq!(pr.boundary_recovered, pr.boundary_candidates);
        assert_eq!(pr.boundary_recovered + pr.connector_edges, pr.cut.count);
        // Every boundary edge is present in the sparsifier.
        let ids: std::collections::HashSet<usize> =
            psp.sparsifier().edge_ids().iter().copied().collect();
        for (id, e) in g.edges().iter().enumerate() {
            if psp.assignment()[e.u] != psp.assignment()[e.v] {
                assert!(ids.contains(&id), "boundary edge {id} missing");
            }
        }
    }

    #[test]
    fn single_part_delegates_to_plain_shape() {
        let g = grid2d(10, 8, WeightProfile::Unit, 7);
        let psp = sparsify_partitioned(&g, &PartitionedConfig::new(1)).unwrap();
        let pr = psp.partition_report();
        assert_eq!(pr.parts, 1);
        assert_eq!(pr.cut.count, 0);
        assert_eq!(pr.connector_edges, 0);
        // One part, no cut: identical edge set to the global driver.
        let global = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let mut a = psp.sparsifier().edge_ids().to_vec();
        let mut b = global.edge_ids().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_configs_and_graphs() {
        let g = grid2d(6, 5, WeightProfile::Unit, 1);
        assert!(matches!(
            sparsify_partitioned(&g, &PartitionedConfig::new(0)),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            sparsify_partitioned(&g, &PartitionedConfig::new(2).fiedler_steps(0)),
            Err(CoreError::InvalidConfig { .. })
        ));
        let bad = PartitionedConfig::new(2).boundary(BoundaryPolicy::Scored { fraction: -1.0 });
        assert!(matches!(sparsify_partitioned(&g, &bad), Err(CoreError::InvalidConfig { .. })));
        let disconnected = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            sparsify_partitioned(&disconnected, &PartitionedConfig::new(2)),
            Err(CoreError::Graph(GraphError::Disconnected { .. }))
        ));
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(matches!(
            sparsify_partitioned(&empty, &PartitionedConfig::new(2)),
            Err(CoreError::Graph(GraphError::EmptyGraph))
        ));
    }

    #[test]
    fn parts_exceeding_nodes_degrade_gracefully() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let psp = sparsify_partitioned(&g, &PartitionedConfig::new(8)).unwrap();
        assert!(psp.partition_report().parts <= 3);
        assert!(psp.sparsifier().as_graph(&g).is_connected());
    }

    #[test]
    fn numerical_failure_degrades_to_exact_partitions() {
        let g = grid2d(12, 10, WeightProfile::Unit, 2);
        // A zero shift makes every partition's local Laplacian exactly
        // singular, and JL-resistance scoring factorizes that full local
        // Laplacian up front: before the resilience layer this aborted
        // the whole run with CoreError::Sparse.
        let cfg = PartitionedConfig::new(4)
            .base(SparsifyConfig::new(Method::JlResistance).shift(ShiftPolicy::None));
        let psp = sparsify_partitioned(&g, &cfg).unwrap();
        let pr = psp.partition_report();
        assert!(pr.degraded_partitions > 0, "degradation must be recorded");
        assert!(pr.per_partition.iter().any(|p| p.degraded_components > 0));
        let sp = psp.sparsifier();
        assert!(sp.report().degraded_fallbacks > 0);
        assert!(sp.report().to_string().contains("degraded"));
        // The degraded result is still a valid connected sparsifier with
        // exact recovered-edge accounting.
        assert!(sp.as_graph(&g).is_connected());
        let recovered: usize = sp.report().iterations.iter().map(|i| i.recovered).sum();
        assert_eq!(recovered, sp.num_recovered());
    }

    #[test]
    fn pivot_boost_avoids_degradation() {
        use tracered_sparse::BoostSchedule;
        let g = grid2d(12, 10, WeightProfile::Unit, 2);
        let cfg = PartitionedConfig::new(4).base(
            SparsifyConfig::new(Method::JlResistance)
                .shift(ShiftPolicy::None)
                .pivot_boost(Some(BoostSchedule::default())),
        );
        let psp = sparsify_partitioned(&g, &cfg).unwrap();
        let pr = psp.partition_report();
        assert_eq!(pr.degraded_partitions, 0, "the boost ladder should rescue every component");
        assert_eq!(psp.sparsifier().report().degraded_fallbacks, 0);
        // ...and the recovery is visible in the merged iteration stats.
        assert!(psp.sparsifier().report().iterations.iter().any(|it| it.applied_shift > 0.0));
        assert!(psp.sparsifier().as_graph(&g).is_connected());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = tri_mesh(10, 9, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 11);
        let cfg = PartitionedConfig::new(3);
        let a = sparsify_partitioned(&g, &cfg).unwrap();
        let b = sparsify_partitioned(&g, &cfg).unwrap();
        assert_eq!(a.sparsifier().edge_ids(), b.sparsifier().edge_ids());
        assert_eq!(a.assignment(), b.assignment());
    }
}
