//! Dense oracles for the trace-reduction machinery.
//!
//! Everything in this module is `O(n³)` and intended for test problems and
//! debugging: it computes the quantities the rest of the crate
//! *approximates*, so the test suite can bound the approximation error and
//! verify the Sherman–Morrison trace identity exactly.

use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
use tracered_graph::Graph;
use tracered_sparse::{DenseMatrix, SparseError};

use crate::error::CoreError;

/// Dense inverse of the shifted subgraph Laplacian
/// `L_S = L(subgraph) + diag(shifts)`.
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] when the shifted Laplacian is not
/// positive definite (e.g. zero shift).
pub fn subgraph_inverse(
    g: &Graph,
    subgraph_edges: &[usize],
    shifts: &[f64],
) -> Result<DenseMatrix, CoreError> {
    let ls = subgraph_laplacian(g, subgraph_edges, shifts);
    Ok(ls.to_dense().spd_inverse()?)
}

/// Exact `Trace(L_S⁻¹ L_G)` for the shifted Laplacians.
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] when `L_S` is not positive definite.
pub fn trace_proxy(g: &Graph, subgraph_edges: &[usize], shifts: &[f64]) -> Result<f64, CoreError> {
    let lsinv = subgraph_inverse(g, subgraph_edges, shifts)?;
    let lg = laplacian_with_shifts(g, shifts).to_dense();
    Ok(lsinv.matmul(&lg).trace())
}

/// Exact trace reduction (paper Eq. 11) of recovering edge `edge_id` into
/// the subgraph, evaluated with a dense `L_S⁻¹`.
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] when `L_S` is not positive definite.
pub fn trace_reduction(
    g: &Graph,
    subgraph_edges: &[usize],
    shifts: &[f64],
    edge_id: usize,
) -> Result<f64, CoreError> {
    let lsinv = subgraph_inverse(g, subgraph_edges, shifts)?;
    Ok(trace_reduction_with_inverse(g, &lsinv, shifts, edge_id))
}

/// Exact trace reduction given a precomputed dense `L_S⁻¹` (avoids the
/// repeated inversion when scoring many edges).
///
/// Note on the shift: the paper's Eq. 9 expands `L_G` as the pure edge sum
/// `Σ w_ij e_ij e_ijᵀ`, but the *actual* `L_G` in the trace carries the
/// diagonal shift as well. The exact Sherman–Morrison reduction therefore
/// contains an extra `Σ_k s_k x_k²` term (`x = L_S⁻¹ e_pq`), which this
/// oracle includes so the trace identity holds to machine precision. The
/// truncated evaluators in [`crate::criticality`] follow the paper and
/// drop it — it is `O(shift)` and irrelevant for ranking.
///
/// # Panics
///
/// Panics if dimensions disagree or `edge_id` is out of bounds.
pub fn trace_reduction_with_inverse(
    g: &Graph,
    lsinv: &DenseMatrix,
    shifts: &[f64],
    edge_id: usize,
) -> f64 {
    let n = g.num_nodes();
    assert_eq!(lsinv.nrows(), n, "inverse dimension must match the graph");
    assert_eq!(shifts.len(), n, "shift vector must match the graph");
    let e = g.edge(edge_id);
    let (p, q, w) = (e.u, e.v, e.weight);
    // x = L_S⁻¹ e_pq (column p minus column q).
    let mut x = vec![0.0; n];
    for (i, xi) in x.iter_mut().enumerate() {
        *xi = lsinv[(i, p)] - lsinv[(i, q)];
    }
    let r = x[p] - x[q]; // e_pqᵀ L_S⁻¹ e_pq
    let mut sum = 0.0;
    for f in g.edges() {
        let drop = x[f.u] - x[f.v];
        sum += f.weight * drop * drop;
    }
    for (k, &s) in shifts.iter().enumerate() {
        sum += s * x[k] * x[k];
    }
    w * sum / (1.0 + w * r)
}

/// Solves `L x = b` on a **connected** graph with node 0 grounded
/// (`x[0] = 0`), giving exact potentials for any `b ⊥ 1` without a
/// diagonal shift. Used as the exact electrical model behind the
/// tree-phase voltages.
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] when the reduced system is singular
/// (disconnected graph).
///
/// # Panics
///
/// Panics if `b.len() != g.num_nodes()` or the graph is empty.
pub fn grounded_solve(g: &Graph, b: &[f64]) -> Result<Vec<f64>, CoreError> {
    let n = g.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    assert_eq!(b.len(), n, "rhs length must equal node count");
    let l = laplacian_with_shifts(g, &vec![0.0; n]).to_dense();
    let mut red = DenseMatrix::zeros(n - 1, n - 1);
    for r in 1..n {
        for c in 1..n {
            red[(r - 1, c - 1)] = l[(r, c)];
        }
    }
    let rb: Vec<f64> = b[1..].to_vec();
    let chol = red.cholesky().map_err(|e| match e {
        SparseError::NotPositiveDefinite { column } => {
            SparseError::NotPositiveDefinite { column: column + 1 }
        }
        other => other,
    })?;
    let x = chol.solve(&rb);
    let mut out = vec![0.0; n];
    out[1..].copy_from_slice(&x);
    Ok(out)
}

/// Exact effective resistance across `(p, q)` in a connected graph
/// (no shift, computed by grounding).
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] for disconnected graphs.
pub fn effective_resistance(g: &Graph, p: usize, q: usize) -> Result<f64, CoreError> {
    let n = g.num_nodes();
    let mut b = vec![0.0; n];
    b[p] += 1.0;
    b[q] -= 1.0;
    let x = grounded_solve(g, &b)?;
    Ok(x[p] - x[q])
}

/// Exact (unshifted) trace-reduction analogue used to validate the
/// tree-phase scores: Eq. 11 evaluated with grounded solves, i.e. with the
/// Laplacian pseudo-inverse, which is the β → ∞, shift → 0 limit of the
/// truncated score.
///
/// # Errors
///
/// Returns [`CoreError::Sparse`] when the subgraph is disconnected.
pub fn trace_reduction_grounded(
    g: &Graph,
    subgraph_edges: &[usize],
    edge_id: usize,
) -> Result<f64, CoreError> {
    let sub = g.edge_subgraph(subgraph_edges);
    let e = g.edge(edge_id);
    let (p, q, w) = (e.u, e.v, e.weight);
    let n = g.num_nodes();
    let mut b = vec![0.0; n];
    b[p] += 1.0;
    b[q] -= 1.0;
    let x = grounded_solve(&sub, &b)?;
    let r = x[p] - x[q];
    let mut sum = 0.0;
    for f in g.edges() {
        let drop = x[f.u] - x[f.v];
        sum += f.weight * drop * drop;
    }
    Ok(w * sum / (1.0 + w * r))
}

/// Greedy *oracle* sparsifier: starting from a spanning tree, repeatedly
/// recovers the off-subgraph edge with the **exact** maximum trace
/// reduction (recomputing the dense inverse after every recovery).
///
/// This is the upper bound Algorithm 2 approximates — `O(budget · n³)`,
/// strictly a validation tool. Returns the selected edge ids (tree
/// first).
///
/// # Errors
///
/// Returns [`CoreError::Graph`] for disconnected inputs and
/// [`CoreError::Sparse`] if the shifted Laplacian is singular.
pub fn greedy_oracle_sparsifier(
    g: &Graph,
    budget: usize,
    shifts: &[f64],
) -> Result<Vec<usize>, CoreError> {
    let st =
        tracered_graph::mst::spanning_tree(g, tracered_graph::mst::TreeKind::MaxEffectiveWeight)?;
    let mut selected = st.tree_edges;
    let mut candidates = st.off_tree_edges;
    for _ in 0..budget.min(candidates.len()) {
        let lsinv = subgraph_inverse(g, &selected, shifts)?;
        let (best_pos, _) = candidates
            .iter()
            .enumerate()
            .map(|(pos, &eid)| (pos, trace_reduction_with_inverse(g, &lsinv, shifts, eid)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("candidates is non-empty inside the loop");
        selected.push(candidates.swap_remove(best_pos));
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_graph::gen::{random_connected, WeightProfile};
    use tracered_graph::laplacian::subgraph_laplacian;

    fn setup() -> (Graph, Vec<usize>, Vec<f64>) {
        let g = random_connected(12, 10, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 3);
        // Subgraph: a spanning tree.
        let st = tracered_graph::mst::spanning_tree(&g, tracered_graph::mst::TreeKind::MaxWeight)
            .unwrap();
        let shifts = vec![1e-3; 12];
        (g, st.tree_edges, shifts)
    }

    #[test]
    fn sherman_morrison_trace_identity() {
        // Tr(L_{S+e}⁻¹ L_G) = Tr(L_S⁻¹ L_G) − TrRed_S(e), exactly.
        let (g, sub, shifts) = setup();
        let off: Vec<usize> = (0..g.num_edges()).filter(|id| !sub.contains(id)).collect();
        let before = trace_proxy(&g, &sub, &shifts).unwrap();
        for &eid in off.iter().take(5) {
            let red = trace_reduction(&g, &sub, &shifts, eid).unwrap();
            let mut sub2 = sub.clone();
            sub2.push(eid);
            let after = trace_proxy(&g, &sub2, &shifts).unwrap();
            assert!(
                (before - red - after).abs() < 1e-6 * before.abs(),
                "identity violated: {before} - {red} vs {after}"
            );
        }
    }

    #[test]
    fn trace_reduction_is_positive_for_off_subgraph_edges() {
        let (g, sub, shifts) = setup();
        for id in 0..g.num_edges() {
            if sub.contains(&id) {
                continue;
            }
            let red = trace_reduction(&g, &sub, &shifts, id).unwrap();
            assert!(red > 0.0, "edge {id} has non-positive reduction {red}");
        }
    }

    #[test]
    fn grounded_solve_satisfies_kirchhoff() {
        let (g, _, _) = setup();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[2] = 1.0;
        b[7] = -1.0;
        let x = grounded_solve(&g, &b).unwrap();
        let l = laplacian_with_shifts(&g, &vec![0.0; n]).to_dense();
        let lx = l.matvec(&x);
        for i in 0..n {
            assert!((lx[i] - b[i]).abs() < 1e-9, "node {i}");
        }
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn effective_resistance_series_parallel() {
        // Two parallel paths 0-1-2 (r=2) and 0-3-2 (r=2): R(0,2) = 1.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 3, 1.0), (3, 2, 1.0)]).unwrap();
        let r = effective_resistance(&g, 0, 2).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn shifted_and_grounded_reductions_agree_for_small_shift() {
        let (g, sub, _) = setup();
        let tiny = vec![1e-9; g.num_nodes()];
        let off: Vec<usize> = (0..g.num_edges()).filter(|id| !sub.contains(id)).collect();
        for &eid in off.iter().take(4) {
            let a = trace_reduction(&g, &sub, &tiny, eid).unwrap();
            let b = trace_reduction_grounded(&g, &sub, eid).unwrap();
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + b.abs()),
                "edge {eid}: shifted {a} vs grounded {b}"
            );
        }
    }

    #[test]
    fn disconnected_subgraph_is_rejected() {
        let (g, _, _) = setup();
        // Empty subgraph with zero shift → singular.
        assert!(trace_reduction_grounded(&g, &[], 0).is_err());
    }

    #[test]
    fn greedy_oracle_beats_random_selection() {
        let g = random_connected(16, 20, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 5);
        let shifts = vec![5e-3; 16];
        let budget = 4;
        let oracle = greedy_oracle_sparsifier(&g, budget, &shifts).unwrap();
        let oracle_trace = trace_proxy(&g, &oracle, &shifts).unwrap();
        // Random selection: tree + first `budget` off-tree edges.
        let st = tracered_graph::mst::spanning_tree(
            &g,
            tracered_graph::mst::TreeKind::MaxEffectiveWeight,
        )
        .unwrap();
        let mut random = st.tree_edges.clone();
        random.extend(st.off_tree_edges.iter().take(budget).copied());
        let random_trace = trace_proxy(&g, &random, &shifts).unwrap();
        assert!(
            oracle_trace <= random_trace + 1e-9,
            "oracle trace {oracle_trace} must not exceed arbitrary pick {random_trace}"
        );
        assert_eq!(oracle.len(), 15 + budget);
    }

    #[test]
    fn approximate_pipeline_tracks_the_oracle() {
        // The full Algorithm 2 (truncated scores + SPAI) should stay
        // within a modest factor of the exact greedy oracle's trace.
        use crate::{sparsify, Method, SparsifyConfig};
        use tracered_graph::gen::tri_mesh;
        use tracered_graph::laplacian::ShiftPolicy;
        let g = tri_mesh(7, 7, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 9);
        let n = g.num_nodes();
        let shift = 1e-2 * 2.0 * g.total_weight() / n as f64;
        let shifts = vec![shift; n];
        let budget = (0.10 * n as f64).round() as usize;
        let oracle = greedy_oracle_sparsifier(&g, budget, &shifts).unwrap();
        let oracle_trace = trace_proxy(&g, &oracle, &shifts).unwrap();
        let cfg = SparsifyConfig::new(Method::TraceReduction)
            .shift(ShiftPolicy::Uniform(shift))
            .iterations(3);
        let sp = sparsify(&g, &cfg).unwrap();
        let approx_trace = trace_proxy(&g, sp.edge_ids(), &shifts).unwrap();
        // Baseline: the bare tree.
        let st = tracered_graph::mst::spanning_tree(
            &g,
            tracered_graph::mst::TreeKind::MaxEffectiveWeight,
        )
        .unwrap();
        let tree_trace = trace_proxy(&g, &st.tree_edges, &shifts).unwrap();
        // The approximate pipeline must capture most of the oracle's
        // improvement over the tree.
        let captured = (tree_trace - approx_trace) / (tree_trace - oracle_trace);
        assert!(
            captured > 0.6,
            "approximation captures only {captured:.2} of the oracle's trace reduction \
             (tree {tree_trace:.1}, approx {approx_trace:.1}, oracle {oracle_trace:.1})"
        );
    }

    #[test]
    fn trace_proxy_decreases_as_edges_are_added() {
        let (g, sub, shifts) = setup();
        let off: Vec<usize> = (0..g.num_edges()).filter(|id| !sub.contains(id)).collect();
        let mut edges = sub.clone();
        let mut prev = trace_proxy(&g, &edges, &shifts).unwrap();
        for &eid in off.iter().take(4) {
            edges.push(eid);
            let cur = trace_proxy(&g, &edges, &shifts).unwrap();
            assert!(cur < prev + 1e-9, "trace must be non-increasing");
            prev = cur;
        }
        let _ = subgraph_laplacian(&g, &edges, &shifts);
    }
}
