//! The trace-reduction spectral-criticality metric (paper §3.1–3.2).
//!
//! Recovering off-subgraph edge `(p, q)` with weight `w` changes the trace
//! of `L_S⁻¹ L_G` by (paper Eq. 11)
//!
//! ```text
//!                  w · Σ_{(i,j)∈E} w_ij (e_ijᵀ L_S⁻¹ e_pq)²
//! TrRed_S(p, q) = ───────────────────────────────────────────
//!                           1 + w · R_S(p, q)
//! ```
//!
//! Computing the full sum for every candidate is `Ω(m²)`; the paper's
//! physics-inspired truncation keeps only the terms where
//! `e_ijᵀ L_S⁻¹ e_pq` is large — edges near the injection points. In the
//! electrical analogy, `e_ijᵀ L_S⁻¹ e_pq` is the voltage drop across
//! `(i, j)` when a unit current enters the subgraph at `p` and leaves at
//! `q`; the significant drops occur between the high-voltage region around
//! `p` and the low-voltage region around `q`, hence the β-layer BFS
//! neighbourhood restriction of Eq. 12.
//!
//! Two evaluators are provided:
//!
//! - [`tree_phase_scores`]: exact voltage propagation when `S` is a tree
//!   (Eqs. 13–15) — current flows only along the unique `p→q` tree path,
//!   so node voltages follow from BFS with the path edges marked;
//! - [`subgraph_phase_scores`]: general subgraphs via the sparse
//!   approximate inverse `Z̃ ≈ L⁻¹` of the Cholesky factor (Eq. 20).
//!
//! # Parallel evaluation
//!
//! Each candidate's score depends only on read-only shared state (graph,
//! tree, factor, approximate inverse) plus private scratch, so scoring is
//! embarrassingly parallel. The `_threads` variants
//! ([`tree_phase_scores_threads`], [`subgraph_phase_scores_threads`])
//! fan candidates out over a work-stealing chunk scheduler
//! ([`tracered_par`]) with one scratch arena per worker; outputs stay
//! index-aligned and **bit-identical** to the serial path for every
//! thread count, because each score is computed by exactly the same
//! per-candidate code either way.

use std::collections::VecDeque;

use tracered_graph::{Graph, RootedTree};
use tracered_sparse::{ApproxInverse, CholeskyFactor};

/// Minimum candidates per chunk: a β-layer BFS costs far more than queue
/// traffic, so modest chunks still amortise scratch reuse while giving
/// the scheduler enough pieces to balance skewed neighbourhood sizes.
const MIN_CHUNK: usize = 16;

/// Reusable scratch for tree-phase scoring — one arena per worker.
struct TreeScratch {
    stamp: u64,
    member_p: Vec<u64>,
    member_q: Vec<u64>,
    volt_p: Vec<f64>,
    volt_q: Vec<f64>,
    path_stamp: Vec<u64>,
    edge_stamp: Vec<u64>,
    nbr_p: Vec<usize>,
    queue: VecDeque<(usize, usize)>,
}

impl TreeScratch {
    fn new(n: usize, m: usize) -> Self {
        TreeScratch {
            stamp: 0,
            member_p: vec![0; n],
            member_q: vec![0; n],
            volt_p: vec![0.0; n],
            volt_q: vec![0.0; n],
            path_stamp: vec![0; m],
            edge_stamp: vec![0; m],
            nbr_p: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Recycling factory for the pool's per-worker scratch cache: a
    /// cached arena is valid whenever its dimensions match — the stamp
    /// counter keeps incrementing, which is exactly how stale entries
    /// are invalidated within a region already. Anything else (other
    /// graph, other densification level) is rebuilt from scratch.
    fn recycle(cached: Option<Self>, n: usize, m: usize) -> Self {
        match cached {
            Some(s) if s.member_p.len() == n && s.path_stamp.len() == m => s,
            _ => TreeScratch::new(n, m),
        }
    }
}

/// Scores one candidate against the spanning tree (the body of the
/// serial loop, shared verbatim by the serial and parallel paths).
fn tree_phase_score_one(
    g: &Graph,
    tree: &RootedTree,
    eid: usize,
    r: f64,
    beta: usize,
    s: &mut TreeScratch,
) -> f64 {
    let e = g.edge(eid);
    let (p, q, w) = (e.u, e.v, e.weight);
    s.stamp += 1;
    let stamp = s.stamp;
    // Mark the unique tree path p→q.
    for pe in tree.path_edges(p, q) {
        s.path_stamp[pe] = stamp;
    }
    // BFS β layers from p in the tree; v(p) = R, dropping across path
    // edges only (Eq. 13).
    s.nbr_p.clear();
    tree_bfs_voltages(
        g,
        tree,
        p,
        beta,
        r,
        -1.0,
        stamp,
        &s.path_stamp,
        &mut s.member_p,
        &mut s.volt_p,
        &mut s.queue,
        Some(&mut s.nbr_p),
    );
    // BFS β layers from q; v(q) = 0, rising across path edges (Eq. 14).
    tree_bfs_voltages(
        g,
        tree,
        q,
        beta,
        0.0,
        1.0,
        stamp,
        &s.path_stamp,
        &mut s.member_q,
        &mut s.volt_q,
        &mut s.queue,
        None,
    );
    // Σ over graph edges (i, j) with i ∈ N(p, β), j ∈ N(q, β).
    let mut sum = 0.0;
    for &i in &s.nbr_p {
        for &(j, cross_eid) in g.neighbors(i) {
            if s.member_q[j] != stamp || s.edge_stamp[cross_eid] == stamp {
                continue;
            }
            s.edge_stamp[cross_eid] = stamp;
            let drop = s.volt_p[i] - s.volt_q[j];
            sum += g.edge(cross_eid).weight * drop * drop;
        }
    }
    w * sum / (1.0 + w * r)
}

/// Scores all `candidates` (off-tree edge ids of `g`) against the spanning
/// tree using the truncated trace reduction of Eq. 15.
///
/// `resistances[k]` must hold the tree effective resistance
/// `R_T(p_k, q_k)` of candidate `k` (batch-computed with
/// [`tracered_graph::lca::tree_resistances`]). `beta` is the BFS
/// truncation radius.
///
/// Returns one score per candidate, aligned with the input order.
///
/// # Panics
///
/// Panics if `resistances.len() != candidates.len()` or an edge id is out
/// of bounds.
pub fn tree_phase_scores(
    g: &Graph,
    tree: &RootedTree,
    candidates: &[usize],
    resistances: &[f64],
    beta: usize,
) -> Vec<f64> {
    tree_phase_scores_threads(g, tree, candidates, resistances, beta, 1)
}

/// [`tree_phase_scores`] evaluated on `threads` workers.
///
/// Candidates are chunked onto a work-stealing queue; each worker owns a
/// private scratch arena (stamps, voltages, BFS queue), so scores are
/// bit-identical to the serial path in the original candidate order.
///
/// # Panics
///
/// Same conditions as [`tree_phase_scores`].
pub fn tree_phase_scores_threads(
    g: &Graph,
    tree: &RootedTree,
    candidates: &[usize],
    resistances: &[f64],
    beta: usize,
    threads: usize,
) -> Vec<f64> {
    assert_eq!(candidates.len(), resistances.len(), "one resistance per candidate is required");
    let n = g.num_nodes();
    let m = g.num_edges();
    let mut scores = vec![0.0f64; candidates.len()];
    let chunk = tracered_par::chunk_size(candidates.len(), threads, MIN_CHUNK);
    tracered_par::par_chunks_mut_scratch(
        &mut scores,
        chunk,
        threads,
        |cached| TreeScratch::recycle(cached, n, m),
        |scratch, start, out| {
            for (off, slot) in out.iter_mut().enumerate() {
                let k = start + off;
                *slot = tree_phase_score_one(g, tree, candidates[k], resistances[k], beta, scratch);
            }
        },
    );
    scores
}

/// BFS over the tree adjacency (parent + children links), assigning node
/// voltages per Eqs. 13–14: the voltage changes by `sign / w_edge` across
/// path edges and is copied verbatim across non-path edges.
#[allow(clippy::too_many_arguments)]
fn tree_bfs_voltages(
    g: &Graph,
    tree: &RootedTree,
    start: usize,
    beta: usize,
    start_voltage: f64,
    sign: f64,
    stamp: u64,
    path_stamp: &[u64],
    member: &mut [u64],
    volt: &mut [f64],
    queue: &mut VecDeque<(usize, usize)>,
    mut collect: Option<&mut Vec<usize>>,
) {
    member[start] = stamp;
    volt[start] = start_voltage;
    if let Some(list) = collect.as_deref_mut() {
        list.push(start);
    }
    queue.clear();
    queue.push_back((start, 0));
    while let Some((x, d)) = queue.pop_front() {
        if d == beta {
            continue;
        }
        // Tree neighbours of x: its parent and its children.
        let parent = tree.parent(x);
        let parent_iter = if parent != tracered_graph::tree::NO_NODE {
            Some((parent, tree.parent_edge(x)))
        } else {
            None
        };
        let children_iter = tree.children(x).iter().map(|&c| (c, tree.parent_edge(c)));
        for (nbr, tree_edge) in parent_iter.into_iter().chain(children_iter) {
            if member[nbr] == stamp {
                continue;
            }
            member[nbr] = stamp;
            volt[nbr] = if path_stamp[tree_edge] == stamp {
                volt[x] + sign / g.edge(tree_edge).weight
            } else {
                volt[x]
            };
            if let Some(list) = collect.as_deref_mut() {
                list.push(nbr);
            }
            queue.push_back((nbr, d + 1));
        }
    }
}

/// Scores all `candidates` (off-subgraph edge ids of `g`) against a
/// general subgraph using the SPAI-based approximation of Eq. 20.
///
/// Arguments:
///
/// - `subgraph`: the current sparsifier as a graph over the same node set
///   (used for the β-layer BFS — the electrical model lives in `S`);
/// - `factor`: Cholesky factorization of the subgraph Laplacian `L_S`;
/// - `zinv`: Algorithm 1 output for `factor.l()`;
/// - `beta`: BFS truncation radius.
///
/// Returns one score per candidate, aligned with the input order.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn subgraph_phase_scores(
    g: &Graph,
    subgraph: &Graph,
    factor: &CholeskyFactor,
    zinv: &ApproxInverse,
    candidates: &[usize],
    beta: usize,
) -> Vec<f64> {
    subgraph_phase_scores_threads(g, subgraph, factor, zinv, candidates, beta, 1)
}

/// Reusable scratch for subgraph-phase scoring — one arena per worker.
struct SubgraphScratch {
    stamp: u64,
    member_p: Vec<u64>,
    member_q: Vec<u64>,
    edge_stamp: Vec<u64>,
    nbr_p: Vec<usize>,
    nbr_q: Vec<usize>,
    queue: VecDeque<(usize, usize)>,
    /// Dense scatter of z̃_pq (in permuted index space).
    zpq_dense: Vec<f64>,
    zpq_touched: Vec<usize>,
}

impl SubgraphScratch {
    fn new(n: usize, m: usize) -> Self {
        SubgraphScratch {
            stamp: 0,
            member_p: vec![0; n],
            member_q: vec![0; n],
            edge_stamp: vec![0; m],
            nbr_p: Vec::new(),
            nbr_q: Vec::new(),
            queue: VecDeque::new(),
            zpq_dense: vec![0.0; n],
            zpq_touched: Vec::new(),
        }
    }

    /// Recycling factory (see [`TreeScratch::recycle`]): dimension match
    /// suffices — stamps stay monotone and `zpq_dense` is rezeroed via
    /// `zpq_touched` after every candidate, so a cached arena meets the
    /// same invariants as a fresh one.
    fn recycle(cached: Option<Self>, n: usize, m: usize) -> Self {
        match cached {
            Some(s) if s.member_p.len() == n && s.edge_stamp.len() == m => s,
            _ => SubgraphScratch::new(n, m),
        }
    }
}

/// Scores one candidate against the current subgraph (the body of the
/// serial loop, shared verbatim by the serial and parallel paths).
fn subgraph_phase_score_one(
    g: &Graph,
    subgraph: &Graph,
    factor: &CholeskyFactor,
    zinv: &ApproxInverse,
    eid: usize,
    beta: usize,
    s: &mut SubgraphScratch,
) -> f64 {
    let perm = factor.perm();
    let e = g.edge(eid);
    let (p, q, w) = (e.u, e.v, e.weight);
    s.stamp += 1;
    let stamp = s.stamp;
    // z̃_pq = z̃_p − z̃_q in permuted space.
    let pp = perm.old_to_new(p);
    let qq = perm.old_to_new(q);
    let zp = zinv.column(pp);
    let zq = zinv.column(qq);
    // Scatter and record touched entries for cheap clearing.
    for (i, v) in zp.iter() {
        if s.zpq_dense[i] == 0.0 {
            s.zpq_touched.push(i);
        }
        s.zpq_dense[i] += v;
    }
    for (i, v) in zq.iter() {
        if s.zpq_dense[i] == 0.0 {
            s.zpq_touched.push(i);
        }
        s.zpq_dense[i] -= v;
    }
    // R̃(p, q) = ‖z̃_pq‖² (since e_pqᵀ L_S⁻¹ e_pq = ‖L⁻¹ e_pq‖²).
    let r_approx: f64 = zp.norm_sq() - 2.0 * zp.dot(zq) + zq.norm_sq();
    // β-layer neighbourhoods in the subgraph.
    s.nbr_p.clear();
    s.nbr_q.clear();
    subgraph_bfs(subgraph, p, beta, stamp, &mut s.member_p, &mut s.queue, &mut s.nbr_p);
    subgraph_bfs(subgraph, q, beta, stamp, &mut s.member_q, &mut s.queue, &mut s.nbr_q);
    // Σ over graph edges (i, j), i ∈ N_S(p, β), j ∈ N_S(q, β).
    let mut sum = 0.0;
    for &i in &s.nbr_p {
        for &(j, cross_eid) in g.neighbors(i) {
            if s.member_q[j] != stamp || s.edge_stamp[cross_eid] == stamp {
                continue;
            }
            s.edge_stamp[cross_eid] = stamp;
            let ii = perm.old_to_new(i);
            let jj = perm.old_to_new(j);
            let di = zinv.column(ii).dot_dense(&s.zpq_dense);
            let dj = zinv.column(jj).dot_dense(&s.zpq_dense);
            let drop = di - dj;
            sum += g.edge(cross_eid).weight * drop * drop;
        }
    }
    // Clear the scatter buffer.
    for &i in &s.zpq_touched {
        s.zpq_dense[i] = 0.0;
    }
    s.zpq_touched.clear();
    w * sum / (1.0 + w * r_approx)
}

/// [`subgraph_phase_scores`] evaluated on `threads` workers.
///
/// Same work-stealing decomposition and determinism contract as
/// [`tree_phase_scores_threads`]: one scratch arena (stamps, BFS queue,
/// z̃ scatter buffer) per worker, bit-identical index-aligned output.
///
/// # Panics
///
/// Same conditions as [`subgraph_phase_scores`].
pub fn subgraph_phase_scores_threads(
    g: &Graph,
    subgraph: &Graph,
    factor: &CholeskyFactor,
    zinv: &ApproxInverse,
    candidates: &[usize],
    beta: usize,
    threads: usize,
) -> Vec<f64> {
    let n = g.num_nodes();
    assert_eq!(subgraph.num_nodes(), n, "subgraph must share the node set");
    assert_eq!(factor.n(), n, "factor dimension must match the graph");
    assert_eq!(zinv.n(), n, "approximate inverse dimension must match");
    let m = g.num_edges();
    let mut scores = vec![0.0f64; candidates.len()];
    let chunk = tracered_par::chunk_size(candidates.len(), threads, MIN_CHUNK);
    tracered_par::par_chunks_mut_scratch(
        &mut scores,
        chunk,
        threads,
        |cached| SubgraphScratch::recycle(cached, n, m),
        |scratch, start, out| {
            for (off, slot) in out.iter_mut().enumerate() {
                let k = start + off;
                *slot = subgraph_phase_score_one(
                    g,
                    subgraph,
                    factor,
                    zinv,
                    candidates[k],
                    beta,
                    scratch,
                );
            }
        },
    );
    scores
}

/// β-layer BFS over the subgraph, collecting members (exposed to tests).
fn subgraph_bfs(
    subgraph: &Graph,
    start: usize,
    beta: usize,
    stamp: u64,
    member: &mut [u64],
    queue: &mut VecDeque<(usize, usize)>,
    out: &mut Vec<usize>,
) {
    member[start] = stamp;
    out.push(start);
    queue.clear();
    queue.push_back((start, 0));
    while let Some((x, d)) = queue.pop_front() {
        if d == beta {
            continue;
        }
        for &(nbr, _) in subgraph.neighbors(x) {
            if member[nbr] != stamp {
                member[nbr] = stamp;
                out.push(nbr);
                queue.push_back((nbr, d + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_graph::gen::{random_connected, WeightProfile};
    use tracered_graph::laplacian::subgraph_laplacian;
    use tracered_graph::lca::tree_resistances;
    use tracered_graph::mst::{spanning_tree, TreeKind};
    use tracered_sparse::order::Ordering;
    use tracered_sparse::SpaiOptions;

    /// Cycle graph 0-1-…-(n-1)-0, tree = the path, one off-tree edge.
    fn cycle(n: usize) -> (Graph, RootedTree, usize) {
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((0, n - 1, 1.0));
        let g = Graph::from_edges(n, &edges).unwrap();
        let ids: Vec<usize> = (0..n - 1).collect();
        let tree = RootedTree::build(&g, &ids, 0).unwrap();
        (g, tree, n - 1)
    }

    #[test]
    fn cycle_closing_edge_score_matches_hand_computation() {
        // Cycle of 4: off-tree edge (0,3), R_T = 3. With β ≥ diameter the
        // sum runs over all edges; the voltage profile is v = [3,2,1,0],
        // every tree edge drops 1 and the off-tree edge drops 3:
        // sum = 3·1² + 3² = 12, score = 1·12 / (1 + 3) = 3.
        let (g, tree, off) = cycle(4);
        let scores = tree_phase_scores(&g, &tree, &[off], &[3.0], 10);
        assert!((scores[0] - 3.0).abs() < 1e-12, "got {}", scores[0]);
    }

    #[test]
    fn beta_zero_keeps_only_the_candidate_edge_term() {
        // With β = 0 the neighbourhoods are {p} and {q}: only edges
        // directly between p and q survive — here just the candidate
        // itself: score = w·(w_pq R²)/(1+wR) = 9/4.
        let (g, tree, off) = cycle(4);
        let scores = tree_phase_scores(&g, &tree, &[off], &[3.0], 0);
        assert!((scores[0] - 9.0 / 4.0).abs() < 1e-12, "got {}", scores[0]);
    }

    #[test]
    fn scores_grow_monotonically_with_beta() {
        let g = random_connected(30, 40, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 8);
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let tree = RootedTree::build(&g, &st.tree_edges, 0).unwrap();
        let pairs: Vec<(usize, usize)> =
            st.off_tree_edges.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
        let rs = tree_resistances(&tree, &pairs);
        let mut prev: Option<Vec<f64>> = None;
        for beta in [0usize, 1, 2, 4, 8] {
            let s = tree_phase_scores(&g, &tree, &st.off_tree_edges, &rs, beta);
            if let Some(p) = prev {
                for (a, b) in s.iter().zip(p.iter()) {
                    assert!(a + 1e-12 >= *b, "score must grow with beta: {a} < {b}");
                }
            }
            prev = Some(s);
        }
    }

    #[test]
    fn tree_and_subgraph_phases_agree_on_a_tree_subgraph() {
        // Scoring against the tree with the subgraph-phase machinery
        // (exact inverse, full beta) must match the tree-phase scores.
        let g = random_connected(18, 20, WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 15);
        let n = g.num_nodes();
        let st = spanning_tree(&g, TreeKind::MaxWeight).unwrap();
        let tree = RootedTree::build(&g, &st.tree_edges, 0).unwrap();
        let pairs: Vec<(usize, usize)> =
            st.off_tree_edges.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
        let rs = tree_resistances(&tree, &pairs);
        let tree_scores = tree_phase_scores(&g, &tree, &st.off_tree_edges, &rs, n);
        let shifts = vec![1e-9; n];
        let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
        let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        let sub = g.edge_subgraph(&st.tree_edges);
        let sub_scores = subgraph_phase_scores(&g, &sub, &factor, &zinv, &st.off_tree_edges, n);
        for (k, (a, b)) in tree_scores.iter().zip(sub_scores.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-4 * (1.0 + a.abs()),
                "edge {k}: tree phase {a} vs subgraph phase {b}"
            );
        }
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let g = random_connected(40, 80, WeightProfile::LogUniform { lo: 0.1, hi: 10.0 }, 77);
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let tree = RootedTree::build(&g, &st.tree_edges, 0).unwrap();
        let pairs: Vec<(usize, usize)> =
            st.off_tree_edges.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
        let rs = tree_resistances(&tree, &pairs);
        for beta in [1usize, 3, 5] {
            for s in tree_phase_scores(&g, &tree, &st.off_tree_edges, &rs, beta) {
                assert!(s.is_finite() && s >= 0.0);
            }
        }
    }

    #[test]
    fn empty_candidate_list_yields_empty_scores() {
        let (g, tree, _) = cycle(5);
        assert!(tree_phase_scores(&g, &tree, &[], &[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "one resistance per candidate")]
    fn mismatched_resistances_panic() {
        let (g, tree, off) = cycle(5);
        tree_phase_scores(&g, &tree, &[off], &[], 3);
    }
}
