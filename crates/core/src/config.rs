//! Sparsifier configuration.

use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::mst::TreeKind;
use tracered_sparse::order::Ordering;
use tracered_sparse::{BoostSchedule, KernelVariant};

use crate::error::CoreError;

/// Which spectral-criticality metric drives edge recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Method {
    /// The paper's approximate trace reduction (Algorithm 2) — default.
    #[default]
    TraceReduction,
    /// GRASS-style spectral perturbation analysis \[Feng 2020\]:
    /// criticality `w_pq (h_tᵀ e_pq)²` from t-step generalized power
    /// iterations, with the same iterative densification schedule.
    Grass,
    /// feGRASS-style effective-resistance criticality `w_pq · R_T(p, q)`
    /// computed once against the spanning tree (single pass).
    EffectiveResistance,
    /// Spielman–Srivastava criticality `w_pq · R̃_G(p, q)` with
    /// effective resistances estimated in the **full graph** via
    /// Johnson–Lindenstrauss projections \[Spielman & Srivastava 2011\] —
    /// the costly-but-principled baseline of the paper's introduction
    /// (requires factorizing the full graph Laplacian).
    JlResistance,
}

/// Configuration for [`fn@crate::sparsify`].
///
/// Defaults mirror the paper's experimental setup: recover `10 % · |V|`
/// off-tree edges over five densification iterations, with truncation
/// radius β = 5 and SPAI threshold δ = 0.1.
///
/// # Example
///
/// ```
/// use tracered_core::{Method, SparsifyConfig};
///
/// let cfg = SparsifyConfig::new(Method::TraceReduction)
///     .edge_fraction(0.05)
///     .iterations(3)
///     .beta(4);
/// assert_eq!(cfg.num_iterations(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SparsifyConfig {
    method: Method,
    edge_fraction: f64,
    iterations: usize,
    beta: usize,
    spai_threshold: f64,
    similarity_layers: usize,
    use_similarity_exclusion: bool,
    tree_kind: TreeKind,
    ordering: Ordering,
    shift: ShiftPolicy,
    grass_power_steps: usize,
    grass_num_vectors: usize,
    jl_probes: usize,
    seed: u64,
    track_trace: bool,
    threads: Option<usize>,
    factor_threads: Option<usize>,
    kernel: KernelVariant,
    pivot_boost: Option<BoostSchedule>,
}

impl Default for SparsifyConfig {
    fn default() -> Self {
        SparsifyConfig::new(Method::default())
    }
}

impl SparsifyConfig {
    /// Creates the paper-default configuration for a given method.
    pub fn new(method: Method) -> Self {
        let single_pass = method == Method::EffectiveResistance || method == Method::JlResistance;
        SparsifyConfig {
            method,
            edge_fraction: 0.10,
            iterations: if single_pass { 1 } else { 5 },
            beta: 5,
            spai_threshold: 0.1,
            similarity_layers: 1,
            // The paper combines exclusion with trace reduction; GRASS [8]
            // runs without it.
            use_similarity_exclusion: method != Method::Grass,
            tree_kind: TreeKind::MaxEffectiveWeight,
            ordering: Ordering::MinDegree,
            // The paper adds "small values" to the diagonal; its test
            // matrices additionally carry physical diagonal dominance
            // (ground conductance). A vanishing shift makes L⁻¹'s columns
            // share a huge near-nullspace tail that defeats Algorithm 1's
            // max-relative pruning (see DESIGN.md §3 and the shift-sweep
            // ablation bench), so the default grounds at 1e-3 of the mean
            // weighted degree — the scale the paper's benchmarks live at.
            shift: ShiftPolicy::RelativeMeanDegree(1e-3),
            grass_power_steps: 2,
            grass_num_vectors: 3,
            jl_probes: 24,
            seed: 0x5eed,
            track_trace: false,
            // Serial by default: scoring, resistances and SpMV stay on
            // the historical exact arithmetic path unless opted in.
            threads: Some(1),
            // Factorization threads are a separate knob because the
            // parallel numeric Cholesky is bit-identical at every count
            // (unlike the chunk-rounded reductions behind `threads`),
            // and because the partitioned driver parallelizes *across*
            // partitions with `threads` while each partition can still
            // factor in parallel *inside* its job with this knob.
            factor_threads: Some(1),
            // The scalar up-looking kernel is the historical default;
            // `KernelVariant::Supernodal` opts into blocked panels.
            kernel: KernelVariant::Scalar,
            // No boosted refactorization by default: a failing pivot
            // surfaces as a typed error unless the caller opts into the
            // resilience ladder.
            pivot_boost: None,
        }
    }

    /// Worker threads for the scoring/SpMV hot paths: `Some(1)` (the
    /// default) is the exact serial path, `Some(t)` uses `t` workers,
    /// and `None` uses the hardware's available parallelism.
    ///
    /// Criticality scores are bit-identical across thread counts (see
    /// [`crate::criticality`]), so this only changes wall-clock time.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The configured thread knob (`None` = auto-detect).
    pub fn threads_value(&self) -> Option<usize> {
        self.threads
    }

    /// Worker threads for the per-iteration subgraph Cholesky
    /// factorizations: `Some(1)` (the default) is the serial up-looking
    /// kernel, `Some(t)` factors independent elimination-tree subtrees
    /// on `t` workers, `None` uses the hardware's available parallelism.
    ///
    /// The parallel factorization is **bit-identical** to the serial one
    /// (see [`tracered_sparse::CholeskyFactor::factorize_threads`]), so
    /// this knob changes `factor_time` only — sparsifier edge sets,
    /// scores, and solve results are unchanged at every setting.
    pub fn factor_threads(mut self, threads: Option<usize>) -> Self {
        self.factor_threads = threads;
        self
    }

    /// The configured factorization thread knob (`None` = auto-detect).
    pub fn factor_threads_value(&self) -> Option<usize> {
        self.factor_threads
    }

    /// Numeric Cholesky kernel for the per-iteration factorizations:
    /// [`KernelVariant::Scalar`] (the default up-looking row kernel) or
    /// [`KernelVariant::Supernodal`] (blocked panels with tiled rank-k
    /// updates — see [`tracered_sparse::supernode`]).
    ///
    /// Unlike the thread knobs, the kernel changes floating-point
    /// summation order, so it **is** part of the config fingerprint: the
    /// two variants agree only up to rounding and must not share a
    /// cached factor.
    pub fn kernel(mut self, kernel: KernelVariant) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured numeric kernel variant.
    pub fn kernel_value(&self) -> KernelVariant {
        self.kernel
    }

    /// Diagonal-boost retry ladder for the per-iteration subgraph
    /// factorizations: `None` (the default) surfaces a non-positive
    /// pivot as [`crate::CoreError::Sparse`]; `Some(schedule)` retries
    /// through [`tracered_sparse::factorize_regularized_threads`] and
    /// records the applied shift in
    /// [`crate::IterationStats::applied_shift`]. The boost is applied to
    /// the factorization *input*, so factor bit-identity across thread
    /// counts is preserved.
    pub fn pivot_boost(mut self, schedule: Option<BoostSchedule>) -> Self {
        self.pivot_boost = schedule;
        self
    }

    /// The configured pivot-boost ladder (`None` = fail fast).
    pub fn pivot_boost_value(&self) -> Option<BoostSchedule> {
        self.pivot_boost
    }

    /// Number of Johnson–Lindenstrauss probes (full-graph solves) for the
    /// [`Method::JlResistance`] baseline (default 24).
    pub fn jl_probes(mut self, probes: usize) -> Self {
        self.jl_probes = probes;
        self
    }

    /// The configured JL probe count.
    pub fn jl_probes_value(&self) -> usize {
        self.jl_probes
    }

    /// Fraction of `|V|` off-tree edges to recover (paper: 0.10).
    pub fn edge_fraction(mut self, fraction: f64) -> Self {
        self.edge_fraction = fraction;
        self
    }

    /// Number of densification iterations `N_r` (paper: 5).
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// BFS truncation radius β of the trace-reduction sums (paper: 5).
    pub fn beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    /// Pruning threshold δ of Algorithm 1 (paper: 0.1).
    pub fn spai_threshold(mut self, delta: f64) -> Self {
        self.spai_threshold = delta;
        self
    }

    /// BFS radius used when marking spectrally similar edges for
    /// exclusion (default 1).
    pub fn similarity_layers(mut self, layers: usize) -> Self {
        self.similarity_layers = layers;
        self
    }

    /// Enables or disables similar-edge exclusion.
    pub fn similarity_exclusion(mut self, enabled: bool) -> Self {
        self.use_similarity_exclusion = enabled;
        self
    }

    /// Spanning-tree flavour (default: feGRASS's MEWST).
    pub fn tree_kind(mut self, kind: TreeKind) -> Self {
        self.tree_kind = kind;
        self
    }

    /// Fill-reducing ordering used for the per-iteration factorizations.
    pub fn ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Diagonal-shift policy applied identically to `L_G` and every
    /// subgraph Laplacian.
    pub fn shift(mut self, shift: ShiftPolicy) -> Self {
        self.shift = shift;
        self
    }

    /// Number of generalized power-iteration steps `t` for the GRASS
    /// baseline (default 2).
    pub fn grass_power_steps(mut self, t: usize) -> Self {
        self.grass_power_steps = t;
        self
    }

    /// Number of independent random probe vectors for the GRASS baseline
    /// (default 3).
    pub fn grass_num_vectors(mut self, k: usize) -> Self {
        self.grass_num_vectors = k;
        self
    }

    /// RNG seed for the GRASS probes (deterministic by default).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records a Hutchinson estimate of `Trace(L_S⁻¹ L_G)` in each
    /// iteration's [`crate::IterationStats`] — the quantity Algorithm 2
    /// greedily drives down. Costs one extra factorization in the first
    /// iteration plus a few solves per iteration; off by default.
    pub fn track_trace(mut self, enabled: bool) -> Self {
        self.track_trace = enabled;
        self
    }

    /// Whether per-iteration trace estimates are recorded.
    pub fn track_trace_enabled(&self) -> bool {
        self.track_trace
    }

    /// The configured method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The configured edge-recovery fraction.
    pub fn edge_fraction_value(&self) -> f64 {
        self.edge_fraction
    }

    /// The configured iteration count.
    pub fn num_iterations(&self) -> usize {
        self.iterations
    }

    /// The configured truncation radius.
    pub fn beta_value(&self) -> usize {
        self.beta
    }

    /// The configured SPAI threshold.
    pub fn spai_threshold_value(&self) -> f64 {
        self.spai_threshold
    }

    /// The configured similarity-exclusion radius.
    pub fn similarity_layers_value(&self) -> usize {
        self.similarity_layers
    }

    /// Whether similar-edge exclusion is enabled.
    pub fn similarity_exclusion_enabled(&self) -> bool {
        self.use_similarity_exclusion
    }

    /// The configured spanning-tree flavour.
    pub fn tree_kind_value(&self) -> TreeKind {
        self.tree_kind
    }

    /// The configured factorization ordering.
    pub fn ordering_value(&self) -> Ordering {
        self.ordering
    }

    /// The configured shift policy.
    pub fn shift_value(&self) -> &ShiftPolicy {
        &self.shift
    }

    /// The configured GRASS power-step count.
    pub fn grass_power_steps_value(&self) -> usize {
        self.grass_power_steps
    }

    /// The configured GRASS probe count.
    pub fn grass_num_vectors_value(&self) -> usize {
        self.grass_num_vectors
    }

    /// The configured RNG seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when a value is out of range.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.edge_fraction.is_finite() || self.edge_fraction < 0.0 {
            return Err(CoreError::InvalidConfig {
                what: format!("edge_fraction {} must be finite and >= 0", self.edge_fraction),
            });
        }
        if self.iterations == 0 {
            return Err(CoreError::InvalidConfig { what: "iterations must be at least 1".into() });
        }
        if !self.spai_threshold.is_finite() || self.spai_threshold < 0.0 {
            return Err(CoreError::InvalidConfig {
                what: format!("spai_threshold {} must be finite and >= 0", self.spai_threshold),
            });
        }
        if self.method == Method::Grass
            && (self.grass_num_vectors == 0 || self.grass_power_steps == 0)
        {
            return Err(CoreError::InvalidConfig {
                what: "GRASS requires at least one probe vector and one power step".into(),
            });
        }
        if self.method == Method::JlResistance && self.jl_probes == 0 {
            return Err(CoreError::InvalidConfig {
                what: "JL resistance requires at least one probe".into(),
            });
        }
        if self.threads == Some(0) {
            return Err(CoreError::InvalidConfig {
                what: "threads must be at least 1 (use None for auto-detect)".into(),
            });
        }
        if self.factor_threads == Some(0) {
            return Err(CoreError::InvalidConfig {
                what: "factor_threads must be at least 1 (use None for auto-detect)".into(),
            });
        }
        if let Some(boost) = &self.pivot_boost {
            boost
                .validate()
                .map_err(|e| CoreError::InvalidConfig { what: format!("pivot_boost: {e}") })?;
        }
        Ok(())
    }

    /// A 64-bit fingerprint over every knob that can change the
    /// sparsifier's *output* — the "config" half of the service layer's
    /// factor-cache key `(matrix fingerprint, config fingerprint)`.
    ///
    /// `threads` and `factor_threads` are deliberately excluded: the
    /// parallel kernels they select are bit-identical at every count
    /// (the workspace determinism contract), so two configs differing
    /// only in thread counts produce the same sparsifier and may share a
    /// cached factor.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(match self.method {
            Method::TraceReduction => 0,
            Method::Grass => 1,
            Method::EffectiveResistance => 2,
            Method::JlResistance => 3,
        });
        mix(self.edge_fraction.to_bits());
        mix(self.iterations as u64);
        mix(self.beta as u64);
        mix(self.spai_threshold.to_bits());
        mix(self.similarity_layers as u64);
        mix(u64::from(self.use_similarity_exclusion));
        // Every enum below is matched exhaustively ON PURPOSE: a wildcard
        // arm here once collapsed distinct variants onto one tag, and the
        // service factor cache keys on this fingerprint — two different
        // configs silently shared a cached factor. Adding a variant must
        // be a compile error at this site, never a silent collision.
        mix(match self.tree_kind {
            TreeKind::MaxEffectiveWeight => 0,
            TreeKind::MaxWeight => 1,
        });
        mix(match self.ordering {
            Ordering::Natural => 0,
            Ordering::Rcm => 1,
            Ordering::MinDegree => 2,
            Ordering::NestedDissection => 3,
        });
        match &self.shift {
            ShiftPolicy::None => mix(0),
            ShiftPolicy::Uniform(s) => {
                mix(1);
                mix(s.to_bits());
            }
            ShiftPolicy::RelativeMeanDegree(f) => {
                mix(2);
                mix(f.to_bits());
            }
            ShiftPolicy::PerNode(shifts) => {
                mix(3);
                mix(shifts.len() as u64);
                for s in shifts {
                    mix(s.to_bits());
                }
            }
        }
        mix(match self.kernel {
            KernelVariant::Scalar => 0,
            KernelVariant::Supernodal => 1,
        });
        mix(self.grass_power_steps as u64);
        mix(self.grass_num_vectors as u64);
        mix(self.jl_probes as u64);
        mix(self.seed);
        mix(u64::from(self.track_trace));
        match &self.pivot_boost {
            None => mix(0),
            Some(b) => {
                mix(1);
                mix(b.initial_relative.to_bits());
                mix(b.growth.to_bits());
                mix(b.max_boosts as u64);
            }
        }
        h
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SparsifyConfig::default();
        assert_eq!(cfg.method(), Method::TraceReduction);
        assert!((cfg.edge_fraction_value() - 0.10).abs() < 1e-12);
        assert_eq!(cfg.num_iterations(), 5);
        assert_eq!(cfg.beta_value(), 5);
        assert!((cfg.spai_threshold_value() - 0.1).abs() < 1e-12);
        assert!(cfg.similarity_exclusion_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn fingerprint_tracks_output_knobs_only() {
        let base = SparsifyConfig::default();
        assert_eq!(base.fingerprint(), SparsifyConfig::default().fingerprint(), "deterministic");
        // Output-changing knobs move the fingerprint…
        assert_ne!(base.fingerprint(), base.clone().edge_fraction(0.2).fingerprint());
        assert_ne!(base.fingerprint(), base.clone().seed(7).fingerprint());
        assert_ne!(base.fingerprint(), SparsifyConfig::new(Method::Grass).fingerprint());
        // …while thread knobs (bit-identical kernels) share a cache slot.
        assert_eq!(
            base.fingerprint(),
            base.clone().threads(Some(8)).factor_threads(None).fingerprint()
        );
    }

    /// Regression for the wildcard-arm fingerprint collision: every
    /// variant of every enum knob must map to its own tag, so no two of
    /// these configs may share a fingerprint — the service factor cache
    /// keys on it, and a collision silently serves one config's factor
    /// for another.
    #[test]
    fn fingerprints_pairwise_distinct_across_all_enum_variants() {
        let base = SparsifyConfig::default;
        let mut variants: Vec<(String, u64)> = Vec::new();
        for method in [
            Method::TraceReduction,
            Method::Grass,
            Method::EffectiveResistance,
            Method::JlResistance,
        ] {
            // `new(method)` also flips iteration/exclusion defaults; pin
            // them so only the method axis varies.
            let cfg = SparsifyConfig::new(method).iterations(5).similarity_exclusion(true);
            variants.push((format!("method::{method:?}"), cfg.fingerprint()));
        }
        for kind in [TreeKind::MaxEffectiveWeight, TreeKind::MaxWeight] {
            variants.push((format!("tree::{kind:?}"), base().tree_kind(kind).fingerprint()));
        }
        for ordering in
            [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree, Ordering::NestedDissection]
        {
            variants.push((format!("ord::{ordering:?}"), base().ordering(ordering).fingerprint()));
        }
        for (name, shift) in [
            ("none", ShiftPolicy::None),
            ("uniform", ShiftPolicy::Uniform(1e-3)),
            ("relmean", ShiftPolicy::RelativeMeanDegree(1e-3)),
            ("pernode", ShiftPolicy::PerNode(vec![1e-3; 4])),
        ] {
            variants.push((format!("shift::{name}"), base().shift(shift).fingerprint()));
        }
        for kernel in [KernelVariant::Scalar, KernelVariant::Supernodal] {
            variants.push((format!("kernel::{kernel:?}"), base().kernel(kernel).fingerprint()));
        }
        for boost in [None, Some(BoostSchedule::default())] {
            variants.push((
                format!("boost::{}", boost.is_some()),
                base().pivot_boost(boost).fingerprint(),
            ));
        }
        // The default config is reached once along every axis; those (and
        // only those) entries may share a fingerprint.
        let defaults = [
            "method::TraceReduction",
            "tree::MaxEffectiveWeight",
            "ord::MinDegree",
            "shift::relmean",
            "kernel::Scalar",
            "boost::false",
        ];
        for i in 0..variants.len() {
            for j in 0..i {
                if variants[i].1 == variants[j].1 {
                    assert!(
                        defaults.contains(&variants[i].0.as_str())
                            && defaults.contains(&variants[j].0.as_str()),
                        "fingerprint collision between {} and {}",
                        variants[i].0,
                        variants[j].0
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_knob_defaults_scalar_and_fingerprints() {
        let base = SparsifyConfig::default();
        assert_eq!(base.kernel_value(), KernelVariant::Scalar);
        let sup = base.clone().kernel(KernelVariant::Supernodal);
        assert_eq!(sup.kernel_value(), KernelVariant::Supernodal);
        // The kernel changes summation order, so it must move the
        // fingerprint (unlike the thread knobs).
        assert_ne!(base.fingerprint(), sup.fingerprint());
        assert!(sup.validate().is_ok());
    }

    #[test]
    fn effective_resistance_defaults_to_single_pass() {
        let cfg = SparsifyConfig::new(Method::EffectiveResistance);
        assert_eq!(cfg.num_iterations(), 1);
    }

    #[test]
    fn grass_disables_exclusion_by_default() {
        let cfg = SparsifyConfig::new(Method::Grass);
        assert!(!cfg.similarity_exclusion_enabled());
    }

    #[test]
    fn builder_chains() {
        let cfg = SparsifyConfig::new(Method::TraceReduction)
            .edge_fraction(0.2)
            .iterations(3)
            .beta(2)
            .spai_threshold(0.05)
            .similarity_layers(2)
            .seed(9);
        assert!((cfg.edge_fraction_value() - 0.2).abs() < 1e-12);
        assert_eq!(cfg.num_iterations(), 3);
        assert_eq!(cfg.beta_value(), 2);
        assert_eq!(cfg.similarity_layers_value(), 2);
        assert_eq!(cfg.seed_value(), 9);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(SparsifyConfig::default().edge_fraction(-0.1).validate().is_err());
        assert!(SparsifyConfig::default().edge_fraction(f64::NAN).validate().is_err());
        assert!(SparsifyConfig::default().iterations(0).validate().is_err());
        assert!(SparsifyConfig::default().spai_threshold(-1.0).validate().is_err());
        assert!(SparsifyConfig::new(Method::Grass).grass_num_vectors(0).validate().is_err());
        assert!(SparsifyConfig::default().threads(Some(0)).validate().is_err());
        assert!(SparsifyConfig::default().factor_threads(Some(0)).validate().is_err());
    }

    #[test]
    fn threads_knob_defaults_serial_and_accepts_auto() {
        assert_eq!(SparsifyConfig::default().threads_value(), Some(1));
        let auto = SparsifyConfig::default().threads(None);
        assert_eq!(auto.threads_value(), None);
        assert!(auto.validate().is_ok());
        assert_eq!(SparsifyConfig::default().threads(Some(8)).threads_value(), Some(8));
    }

    #[test]
    fn pivot_boost_defaults_off_and_validates() {
        assert!(SparsifyConfig::default().pivot_boost_value().is_none());
        let cfg = SparsifyConfig::default().pivot_boost(Some(BoostSchedule::default()));
        assert!(cfg.pivot_boost_value().is_some());
        assert!(cfg.validate().is_ok());
        let bad = BoostSchedule { growth: 0.5, ..Default::default() };
        let err = SparsifyConfig::default().pivot_boost(Some(bad)).validate();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn factor_threads_knob_defaults_serial_and_accepts_auto() {
        assert_eq!(SparsifyConfig::default().factor_threads_value(), Some(1));
        let auto = SparsifyConfig::default().factor_threads(None);
        assert_eq!(auto.factor_threads_value(), None);
        assert!(auto.validate().is_ok());
        let cfg = SparsifyConfig::default().factor_threads(Some(4));
        assert_eq!(cfg.factor_threads_value(), Some(4));
        // Independent of the scoring knob.
        assert_eq!(cfg.threads_value(), Some(1));
    }
}
