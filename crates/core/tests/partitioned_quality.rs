//! Partitioned-vs-global quality contract: the stitched sparsifier from
//! `sparsify_partitioned` must stay in the same conditioning league as
//! the unpartitioned `sparsify` on the same graph, and must be exactly
//! deterministic at every thread count.
//!
//! Documented tolerance (also stated on [`tracered_core::sparsify_partitioned`]
//! and in the README): with the default scored boundary policy
//! (fraction 1.0 — one recovered separator-zone edge per separator
//! node), the stitched sparsifier's relative condition number
//! κ(L_G, L_P) is within **2×** the global driver's on the mesh test
//! suite (observed ≈ 1.0× on 27k-node grids, often *below* 1× on small
//! meshes where the separator gets a relatively denser budget).
//! Partitioning blinds each local scorer to the separator coupling, so
//! the factor-2 envelope is what the boundary scoring path must
//! preserve.

use tracered_core::metrics::relative_condition_number;
use tracered_core::{
    sparsify, sparsify_partitioned, BoundaryPolicy, PartitionedConfig, Sparsifier, SparsifyConfig,
};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_graph::Graph;
use tracered_sparse::order::Ordering;
use tracered_sparse::CholeskyFactor;

fn kappa(g: &Graph, sp: &Sparsifier) -> f64 {
    let lg = sp.graph_laplacian(g);
    let lp = sp.laplacian(g);
    let f = CholeskyFactor::factorize(&lp, Ordering::MinDegree).unwrap();
    relative_condition_number(&lg, &f, 60, 42)
}

/// The documented quality envelope of the partitioned pipeline.
const KAPPA_TOLERANCE: f64 = 2.0;

#[test]
fn stitched_quality_within_documented_tolerance_of_global() {
    for (g, label) in [
        (grid2d(18, 15, WeightProfile::Unit, 3), "grid2d-unit"),
        (tri_mesh(16, 12, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 7), "trimesh-log"),
    ] {
        let global = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let k_global = kappa(&g, &global);
        for parts in [2usize, 4] {
            let psp = sparsify_partitioned(&g, &PartitionedConfig::new(parts)).unwrap();
            let k_part = kappa(&g, psp.sparsifier());
            assert!(k_part >= 1.0 && k_global >= 1.0);
            assert!(
                k_part <= k_global * KAPPA_TOLERANCE,
                "{label} k={parts}: partitioned κ {k_part} exceeds {KAPPA_TOLERANCE}× \
                 global κ {k_global}"
            );
        }
    }
}

#[test]
fn keep_all_and_scored_boundary_policies_are_comparable() {
    let g = tri_mesh(14, 11, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 5);
    let scored = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
    let keep_all =
        sparsify_partitioned(&g, &PartitionedConfig::new(4).boundary(BoundaryPolicy::KeepAll))
            .unwrap();
    let k_scored = kappa(&g, scored.sparsifier());
    let k_keep = kappa(&g, keep_all.sparsifier());
    // KeepAll retains every cut edge; scored draws the same budget from
    // the wider separator zone by criticality. Both must land in the
    // same conditioning league (slack for the different edge mixes).
    assert!(
        k_keep <= k_scored * 1.5 && k_scored <= k_keep * 1.5,
        "keep-all κ {k_keep} and scored κ {k_scored} diverged"
    );
    // The scored budget is bounded by the separator size.
    let pr = scored.partition_report();
    assert!(pr.boundary_recovered <= g.num_nodes(), "budget must stay bounded");
    // KeepAll recovers exactly the non-connector cut edges.
    let pk = keep_all.partition_report();
    assert_eq!(pk.boundary_recovered + pk.connector_edges, pk.cut.count);
}

#[test]
fn deterministic_for_fixed_seed_at_every_thread_count() {
    let g = tri_mesh(15, 12, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 13);
    for parts in [2usize, 4] {
        let reference =
            sparsify_partitioned(&g, &PartitionedConfig::new(parts).threads(Some(1))).unwrap();
        for threads in [2usize, 4] {
            let run =
                sparsify_partitioned(&g, &PartitionedConfig::new(parts).threads(Some(threads)))
                    .unwrap();
            assert_eq!(
                reference.sparsifier().edge_ids(),
                run.sparsifier().edge_ids(),
                "k={parts}: edge selection changed at {threads} threads"
            );
            assert_eq!(reference.assignment(), run.assignment());
            assert_eq!(
                reference.sparsifier().tree_edge_count(),
                run.sparsifier().tree_edge_count()
            );
            assert_eq!(run.partition_report().threads, threads);
        }
        // And the κ of the (identical) edge set is by construction equal.
        assert_eq!(
            reference.partition_report().boundary_recovered,
            sparsify_partitioned(&g, &PartitionedConfig::new(parts).threads(Some(4)))
                .unwrap()
                .partition_report()
                .boundary_recovered
        );
    }
}

#[test]
fn partitioned_beats_tree_only_baseline() {
    // The recovered edges (local + boundary) must actually help: the
    // stitched sparsifier conditions better than its own spanning tree.
    let g = grid2d(16, 13, WeightProfile::Unit, 9);
    let psp = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
    let tree_only = sparsify(&g, &SparsifyConfig::default().edge_fraction(0.0)).unwrap();
    let k_part = kappa(&g, psp.sparsifier());
    let k_tree = kappa(&g, &tree_only);
    assert!(
        k_part < k_tree,
        "partitioned sparsifier κ {k_part} must beat the bare tree κ {k_tree}"
    );
}
