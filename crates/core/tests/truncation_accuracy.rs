//! Validates the truncated trace-reduction evaluators against the dense
//! oracles: with β large enough to cover the graph and no SPAI pruning,
//! both phases must reproduce the exact scores; with the paper's defaults
//! they must stay close enough to preserve rankings.

use tracered_core::criticality::{subgraph_phase_scores, tree_phase_scores};
use tracered_core::exact;
use tracered_graph::gen::{random_connected, tri_mesh, WeightProfile};
use tracered_graph::laplacian::subgraph_laplacian;
use tracered_graph::lca::tree_resistances;
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::{Graph, RootedTree};
use tracered_sparse::order::Ordering;
use tracered_sparse::{ApproxInverse, CholeskyFactor, SpaiOptions};

fn tree_setup(g: &Graph) -> (RootedTree, Vec<usize>, Vec<usize>) {
    let st = spanning_tree(g, TreeKind::MaxEffectiveWeight).unwrap();
    let tree = RootedTree::build(g, &st.tree_edges, 0).unwrap();
    (tree, st.tree_edges, st.off_tree_edges)
}

#[test]
fn tree_phase_with_full_beta_matches_grounded_oracle() {
    let g = random_connected(25, 30, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 17);
    let (tree, tree_edges, off) = tree_setup(&g);
    let pairs: Vec<(usize, usize)> = off.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = tree_resistances(&tree, &pairs);
    // β = n covers the whole tree → the truncation is exact.
    let truncated = tree_phase_scores(&g, &tree, &off, &rs, g.num_nodes());
    for (k, &eid) in off.iter().enumerate() {
        let oracle = exact::trace_reduction_grounded(&g, &tree_edges, eid).unwrap();
        let rel = (truncated[k] - oracle).abs() / (1.0 + oracle.abs());
        assert!(rel < 1e-9, "edge {eid}: truncated {} vs oracle {oracle}", truncated[k]);
    }
}

#[test]
fn tree_phase_truncation_never_exceeds_exact() {
    // Every dropped term of Eq. 12 is non-negative, so the truncated score
    // is a lower bound of the exact one.
    let g = tri_mesh(8, 8, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 23);
    let (tree, tree_edges, off) = tree_setup(&g);
    let pairs: Vec<(usize, usize)> = off.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = tree_resistances(&tree, &pairs);
    for beta in [1usize, 2, 3, 5] {
        let truncated = tree_phase_scores(&g, &tree, &off, &rs, beta);
        for (k, &eid) in off.iter().enumerate() {
            let oracle = exact::trace_reduction_grounded(&g, &tree_edges, eid).unwrap();
            assert!(
                truncated[k] <= oracle * (1.0 + 1e-9),
                "β={beta} edge {eid}: truncated {} must not exceed exact {oracle}",
                truncated[k]
            );
        }
    }
}

#[test]
fn tree_phase_beta5_is_close_to_exact_on_mesh() {
    let g = tri_mesh(10, 10, WeightProfile::Unit, 3);
    let (tree, tree_edges, off) = tree_setup(&g);
    let pairs: Vec<(usize, usize)> = off.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = tree_resistances(&tree, &pairs);
    let truncated = tree_phase_scores(&g, &tree, &off, &rs, 5);
    let mut captured = 0.0;
    let mut total = 0.0;
    for (k, &eid) in off.iter().enumerate() {
        let oracle = exact::trace_reduction_grounded(&g, &tree_edges, eid).unwrap();
        captured += truncated[k];
        total += oracle;
    }
    let coverage = captured / total;
    assert!(coverage > 0.5, "β=5 should capture most of the trace reduction mass, got {coverage}");
}

#[test]
fn subgraph_phase_with_exact_inverse_and_full_beta_matches_oracle() {
    let g = random_connected(20, 25, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 29);
    let n = g.num_nodes();
    let (_, tree_edges, off) = tree_setup(&g);
    // Subgraph = tree + 3 extra edges → genuinely non-tree.
    let mut sub = tree_edges.clone();
    sub.extend(off.iter().take(3).copied());
    let candidates: Vec<usize> = off.iter().skip(3).copied().collect();
    let shifts = vec![1e-6; n];
    let ls = subgraph_laplacian(&g, &sub, &shifts);
    let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
    // δ = 0 → exact inverse of L.
    let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.0)).unwrap();
    let subgraph = g.edge_subgraph(&sub);
    let scores = subgraph_phase_scores(&g, &subgraph, &factor, &zinv, &candidates, n);
    let lsinv = exact::subgraph_inverse(&g, &sub, &shifts).unwrap();
    for (k, &eid) in candidates.iter().enumerate() {
        // Compare against the paper's Eq. 11 (no shift term): rebuild it
        // from the dense inverse minus the shift correction.
        let with_shift = exact::trace_reduction_with_inverse(&g, &lsinv, &shifts, eid);
        let rel = (scores[k] - with_shift).abs() / (1.0 + with_shift.abs());
        assert!(rel < 1e-4, "edge {eid}: spai score {} vs oracle {with_shift}", scores[k]);
    }
}

#[test]
fn subgraph_phase_default_spai_preserves_top_ranking() {
    let g = tri_mesh(9, 9, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 31);
    let n = g.num_nodes();
    let (_, tree_edges, off) = tree_setup(&g);
    let mut sub = tree_edges.clone();
    sub.extend(off.iter().take(4).copied());
    let candidates: Vec<usize> = off.iter().skip(4).copied().collect();
    // A physically-meaningful grounding scale: Algorithm 1's max-relative
    // pruning needs the inverse factor to be localized (see DESIGN.md §3).
    let shifts = vec![5e-3; n];
    let ls = subgraph_laplacian(&g, &sub, &shifts);
    let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
    let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.1)).unwrap();
    let subgraph = g.edge_subgraph(&sub);
    let approx = subgraph_phase_scores(&g, &subgraph, &factor, &zinv, &candidates, 5);
    let lsinv = exact::subgraph_inverse(&g, &sub, &shifts).unwrap();
    let exact_scores: Vec<f64> = candidates
        .iter()
        .map(|&eid| exact::trace_reduction_with_inverse(&g, &lsinv, &shifts, eid))
        .collect();
    // The top-10 by approximate score must lie within the exact top-half.
    let rank = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx
    };
    let ra = rank(&approx);
    let re = rank(&exact_scores);
    let top_half: std::collections::HashSet<usize> = re[..re.len() / 2].iter().copied().collect();
    let hits = ra[..10.min(ra.len())].iter().filter(|&&i| top_half.contains(&i)).count();
    assert!(hits >= 8, "approximate top-10 must mostly agree with exact ranking, hits = {hits}");
}
