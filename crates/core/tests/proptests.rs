//! Property-based tests for the sparsification pipeline.

use proptest::prelude::*;
use tracered_core::exact;
use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{random_connected, WeightProfile};
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::Graph;
use tracered_sparse::order::Ordering;
use tracered_sparse::CholeskyFactor;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..30, 5usize..40, 0u64..500).prop_map(|(n, extra, seed)| {
        random_connected(n, extra, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparsifier_invariants_hold_for_all_methods(g in arb_graph()) {
        for method in [Method::TraceReduction, Method::Grass, Method::EffectiveResistance] {
            let cfg = SparsifyConfig::new(method).edge_fraction(0.15).iterations(3);
            let sp = sparsify(&g, &cfg).unwrap();
            // Spans and stays connected.
            prop_assert!(sp.as_graph(&g).is_connected());
            // Tree + budget edges, no duplicates.
            let budget = ((0.15 * g.num_nodes() as f64).round() as usize)
                .min(g.num_edges() + 1 - g.num_nodes());
            prop_assert_eq!(sp.edge_ids().len(), g.num_nodes() - 1 + budget);
            let mut ids = sp.edge_ids().to_vec();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), sp.edge_ids().len());
        }
    }

    #[test]
    fn kappa_improves_monotonically_with_budget(g in arb_graph()) {
        let kappa = |fraction: f64| -> f64 {
            let sp = sparsify(&g, &SparsifyConfig::default().edge_fraction(fraction)).unwrap();
            let lg = sp.graph_laplacian(&g);
            let lp = sp.laplacian(&g);
            let f = CholeskyFactor::factorize(&lp, Ordering::MinDegree).unwrap();
            relative_condition_number(&lg, &f, 50, 7)
        };
        let k0 = kappa(0.0);
        let k_all = kappa(10.0); // everything recovered → κ = 1
        prop_assert!(k_all <= k0 * (1.0 + 1e-6));
        prop_assert!((k_all - 1.0).abs() < 1e-4, "full recovery must give κ = 1, got {k_all}");
    }

    #[test]
    fn exact_trace_identity_on_random_subgraphs(g in arb_graph(), extra in 0usize..4) {
        let st = spanning_tree(&g, TreeKind::MaxWeight).unwrap();
        let mut sub = st.tree_edges.clone();
        sub.extend(st.off_tree_edges.iter().take(extra).copied());
        let shifts = vec![1e-2; g.num_nodes()];
        if let Some(&eid) = st.off_tree_edges.get(extra) {
            let before = exact::trace_proxy(&g, &sub, &shifts).unwrap();
            let red = exact::trace_reduction(&g, &sub, &shifts, eid).unwrap();
            let mut sub2 = sub.clone();
            sub2.push(eid);
            let after = exact::trace_proxy(&g, &sub2, &shifts).unwrap();
            prop_assert!(
                (before - red - after).abs() < 1e-8 * before.abs().max(1.0),
                "Sherman–Morrison identity: {before} - {red} != {after}"
            );
            prop_assert!(red > 0.0);
        }
    }

    #[test]
    fn sparsify_is_deterministic(g in arb_graph()) {
        let a = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let b = sparsify(&g, &SparsifyConfig::default()).unwrap();
        prop_assert_eq!(a.edge_ids(), b.edge_ids());
        let ga = sparsify(&g, &SparsifyConfig::new(Method::Grass)).unwrap();
        let gb = sparsify(&g, &SparsifyConfig::new(Method::Grass)).unwrap();
        prop_assert_eq!(ga.edge_ids(), gb.edge_ids());
    }
}
