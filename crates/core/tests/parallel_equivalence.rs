//! Property tests pinning the parallel scoring engine's determinism
//! contract: for every thread count, scores are **bit-identical** to the
//! serial (`threads = 1`) path, in the same candidate order.

use proptest::prelude::*;
use tracered_core::criticality::{subgraph_phase_scores_threads, tree_phase_scores_threads};
use tracered_core::grass::{grass_scores_threads, probe_rng};
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{random_connected, WeightProfile};
use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
use tracered_graph::lca::tree_resistances;
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::{Graph, RootedTree};
use tracered_sparse::order::Ordering;
use tracered_sparse::{ApproxInverse, CholeskyFactor, SpaiOptions};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (12usize..40, 8usize..60, 0u64..500).prop_map(|(n, extra, seed)| {
        random_connected(n, extra, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, seed)
    })
}

fn tree_setup(g: &Graph) -> (RootedTree, Vec<usize>, Vec<f64>) {
    let st = spanning_tree(g, TreeKind::MaxEffectiveWeight).unwrap();
    let tree = RootedTree::build(g, &st.tree_edges, 0).unwrap();
    let pairs: Vec<(usize, usize)> =
        st.off_tree_edges.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    let rs = tree_resistances(&tree, &pairs);
    (tree, st.off_tree_edges, rs)
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_phase_parallel_is_bit_identical(g in arb_graph(), beta in 0usize..6, threads in 2usize..9) {
        let (tree, candidates, rs) = tree_setup(&g);
        let serial = tree_phase_scores_threads(&g, &tree, &candidates, &rs, beta, 1);
        let par = tree_phase_scores_threads(&g, &tree, &candidates, &rs, beta, threads);
        prop_assert!(bits_equal(&serial, &par), "beta {beta}, {threads} threads");
    }

    #[test]
    fn subgraph_phase_parallel_is_bit_identical(g in arb_graph(), beta in 1usize..5, threads in 2usize..9) {
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let shift = 1e-3 * 2.0 * g.total_weight() / g.num_nodes() as f64;
        let shifts = vec![shift; g.num_nodes()];
        let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
        let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.1)).unwrap();
        let sub = g.edge_subgraph(&st.tree_edges);
        let serial = subgraph_phase_scores_threads(
            &g, &sub, &factor, &zinv, &st.off_tree_edges, beta, 1,
        );
        let par = subgraph_phase_scores_threads(
            &g, &sub, &factor, &zinv, &st.off_tree_edges, beta, threads,
        );
        prop_assert!(bits_equal(&serial, &par), "beta {beta}, {threads} threads");
    }

    #[test]
    fn grass_parallel_is_bit_identical(g in arb_graph(), threads in 2usize..9, seed in 0u64..50) {
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let shifts = vec![1e-3; g.num_nodes()];
        let lg = laplacian_with_shifts(&g, &shifts);
        let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
        let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
        let serial = grass_scores_threads(
            &g, &lg, &factor, &st.off_tree_edges, 2, 3, &mut probe_rng(seed), 1,
        );
        let par = grass_scores_threads(
            &g, &lg, &factor, &st.off_tree_edges, 2, 3, &mut probe_rng(seed), threads,
        );
        prop_assert!(bits_equal(&serial, &par), "{threads} threads, seed {seed}");
    }

    #[test]
    fn full_pipeline_is_thread_count_invariant(g in arb_graph(), threads in 2usize..9) {
        for method in [Method::TraceReduction, Method::Grass, Method::EffectiveResistance] {
            let serial = sparsify(&g, &SparsifyConfig::new(method)).unwrap();
            let par = sparsify(
                &g,
                &SparsifyConfig::new(method).threads(Some(threads)),
            )
            .unwrap();
            prop_assert_eq!(
                serial.edge_ids(),
                par.edge_ids(),
                "{:?} selection changed at {} threads",
                method,
                threads
            );
            prop_assert!(par.report().iterations.iter().all(|it| it.threads == threads));
        }
    }
}
