//! Service-side epoch invalidation for contingency sweeps.
//!
//! A contingency sweep ([`tracered_powergrid::contingency`]) perturbs
//! the topology the service's cached factors were built for. While a
//! perturbation is in force, answering a request from those factors
//! would be silently wrong — exactly the failure mode the epoch-pinning
//! protocol exists to prevent. [`ContingencyInvalidator`] implements
//! the sweep's [`EpochHook`]: every applied or reverted matrix
//! perturbation bumps the service epoch, so requests pinned to the
//! pre-outage epoch are rejected as
//! [`crate::ServiceError::StaleEpoch`] instead of answered from an
//! invalidated factor, and the degradation counters
//! ([`crate::MetricsSnapshot::outages_applied`] /
//! [`crate::MetricsSnapshot::update_fallbacks`]) keep the books.
//!
//! ```
//! use std::sync::Arc;
//! use tracered_graph::gen::{grid2d, WeightProfile};
//! use tracered_graph::laplacian::laplacian_with_shifts;
//! use tracered_service::{ContextSpec, ServiceConfig, ServiceRequest, SolverService};
//!
//! let g = grid2d(8, 8, WeightProfile::Unit, 3);
//! let a = Arc::new(laplacian_with_shifts(&g, &vec![0.05; 64]));
//! let svc = SolverService::start(ServiceConfig::default());
//! let epoch = svc.publish(ContextSpec::new(Arc::clone(&a), a)).unwrap();
//!
//! // Hand `svc.contingency_hook()` to `simulate_contingency_batch`;
//! // here we fire it directly to show the stale-epoch interaction.
//! use tracered_powergrid::contingency::{EpochHook, OutageEvent};
//! let hook = svc.contingency_hook();
//! hook.outage_applied(&OutageEvent { outage: 0, epoch: epoch + 1, used_fallback: false });
//!
//! // A request pinned to the pre-outage epoch is now rejected.
//! let client = svc.client();
//! let res = client.solve(ServiceRequest::pcg(vec![1.0; 64], 1e-8).pinned(epoch));
//! assert!(res.is_err());
//! assert_eq!(svc.metrics().outages_applied, 1);
//! ```

use std::sync::Arc;

use tracered_powergrid::contingency::{EpochHook, OutageEvent};

use crate::service::Shared;

/// An [`EpochHook`] bound to one service: each applied or reverted
/// outage advances the service epoch (staling every pinned request in
/// flight) and bumps the outage/fallback counters. Cheap to clone
/// through [`Arc`]; safe to call from the sweeping thread while the
/// aggregator serves requests.
pub struct ContingencyInvalidator {
    shared: Arc<Shared>,
}

impl ContingencyInvalidator {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        ContingencyInvalidator { shared }
    }

    /// Advances the service epoch so epoch-pinned requests submitted
    /// against the previous topology are vetted as stale.
    fn bump_epoch(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.epoch += 1;
        let epoch = state.epoch;
        if let Some(current) = state.current.as_mut() {
            current.epoch = epoch;
        }
    }
}

impl EpochHook for ContingencyInvalidator {
    fn outage_applied(&self, event: &OutageEvent) {
        self.bump_epoch();
        self.shared.metrics.outages_applied.inc();
        if event.used_fallback {
            self.shared.metrics.update_fallbacks.inc();
        }
    }

    fn outage_reverted(&self, _event: &OutageEvent) {
        // The base topology is current again, but factors pinned to the
        // mid-outage epoch must not survive either — bump, don't
        // restore.
        self.bump_epoch();
    }
}
