//! Published contexts, the factor cache, and epochs.
//!
//! A [`ContextSpec`] is what a caller hands to
//! [`crate::SolverService::publish`]: the system matrix, the matrix to
//! precondition with, an opaque configuration tag, and optionally a
//! power-grid attachment for transient requests. Publishing builds (or
//! retrieves from the cache) an immutable [`tracered_solver::SolverContext`]
//! and atomically installs it as the *current epoch*; in-flight batches
//! keep solving against the `Arc` snapshot of the epoch they started
//! with, so a topology swap never tears a running solve.
//!
//! The cache is keyed by `(system fingerprint, preconditioner
//! fingerprint, config tag)` — re-publishing a previously seen topology
//! (e.g. flipping back after an ECO experiment) reuses the factorization
//! instead of paying it again.

use std::collections::HashMap;
use std::sync::Arc;

use tracered_powergrid::transient::TransientConfig;
use tracered_powergrid::PowerGrid;
use tracered_solver::SolverContext;
use tracered_sparse::CscMatrix;

/// Grid attachment of a published context: everything a
/// [`crate::ServiceRequest::simulate`] request needs besides the
/// scenario itself.
#[derive(Clone)]
pub struct GridContext {
    /// The shared power grid (its conductance matrix is memoized inside
    /// [`PowerGrid`], so batches never re-assemble it).
    pub grid: Arc<PowerGrid>,
    /// Transient options shared by every simulate request of the epoch
    /// (step control, scheme, tolerances, thread counts).
    pub transient: TransientConfig,
    /// Probe nodes whose waveforms simulate responses carry.
    pub probes: Vec<usize>,
}

/// What [`crate::SolverService::publish`] installs: the immutable inputs
/// of one context epoch.
pub struct ContextSpec {
    /// The system matrix solve requests run against.
    pub system: Arc<CscMatrix>,
    /// The matrix the preconditioner is factorized from (often a
    /// sparsifier Laplacian of `system`; may be `system` itself).
    pub precond_matrix: Arc<CscMatrix>,
    /// Opaque tag folded into the cache key — distinct sparsifier
    /// configurations must carry distinct tags (e.g.
    /// [`tracered_core::SparsifyConfig::fingerprint`]) so their factors
    /// never collide in the cache.
    ///
    /// [`tracered_core::SparsifyConfig::fingerprint`]: https://docs.rs/tracered-core
    pub config_tag: u64,
    /// Optional grid attachment enabling simulate requests.
    pub grid: Option<GridContext>,
}

impl ContextSpec {
    /// A spec with no grid attachment and a zero config tag.
    pub fn new(system: Arc<CscMatrix>, precond_matrix: Arc<CscMatrix>) -> Self {
        ContextSpec { system, precond_matrix, config_tag: 0, grid: None }
    }

    /// Sets the cache-key configuration tag.
    pub fn with_tag(mut self, config_tag: u64) -> Self {
        self.config_tag = config_tag;
        self
    }

    /// Attaches a grid context, enabling simulate requests.
    pub fn with_grid(mut self, grid: GridContext) -> Self {
        self.grid = Some(grid);
        self
    }
}

/// Cache key of a built solver context. Thread counts are deliberately
/// absent: the factorization kernels are bit-identical at every thread
/// count, so contexts built at different parallelism share a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub system_fp: u64,
    pub precond_fp: u64,
    pub config_tag: u64,
}

/// One published epoch: the built context, its optional grid attachment,
/// and the epoch number. Cloned (cheaply — everything is `Arc`'d) by the
/// aggregator as the per-batch snapshot.
#[derive(Clone)]
pub(crate) struct PublishedContext {
    pub ctx: Arc<SolverContext>,
    pub grid: Option<Arc<GridContext>>,
    pub epoch: u64,
}

/// Mutable service state behind the one mutex: the current epoch and the
/// factor cache. The mutex is held only for pointer-sized reads/writes —
/// factorizations happen outside it.
#[derive(Default)]
pub(crate) struct EpochState {
    pub current: Option<PublishedContext>,
    pub epoch: u64,
    pub cache: HashMap<CacheKey, Arc<SolverContext>>,
}
