//! Request and response types of the solver service.
//!
//! A [`ServiceRequest`] describes one unit of work — a linear solve
//! against the published system matrix or a transient simulation of the
//! published grid — and travels through the channel front-end to the
//! aggregator. Responses come back through a per-request [`Ticket`] as a
//! [`ServiceResult`]: a typed [`ServiceResponse`] on success, a typed
//! [`ServiceError`] otherwise. A faulted request fails *alone*; its
//! batch-mates complete unaffected (the per-column independence of
//! [`tracered_solver::block_pcg`] makes that free at the solver layer).

use std::sync::mpsc;

use tracered_powergrid::transient::{ScenarioOutcome, SourceScenario};
use tracered_solver::TerminationReason;
use tracered_sparse::SparseError;

/// Which solve engine a request targets. Requests only share a batch
/// when their engines match (see [`crate::SolverService`] docs for the
/// full compatibility key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Blocked preconditioned conjugate gradient against the published
    /// context's preconditioner.
    Pcg,
    /// Multi-RHS substitutions against a direct factorization of the
    /// published system matrix (built lazily, shared afterwards).
    Direct,
}

/// The right-hand side of a solve request: materialized up front, or
/// deferred to a closure the aggregator evaluates at batch-assembly time
/// (under `catch_unwind`, so a panicking closure fails only its own
/// request).
pub(crate) enum RhsSource {
    Ready(Vec<f64>),
    Deferred(Box<dyn FnOnce() -> Vec<f64> + Send>),
}

/// What a request asks for.
pub(crate) enum RequestKind {
    Solve { rhs: RhsSource, engine: EngineKind, tol_bits: u64 },
    Simulate { scenario: SourceScenario },
}

/// One unit of work submitted through a [`crate::ServiceClient`].
pub struct ServiceRequest {
    pub(crate) kind: RequestKind,
    pub(crate) pinned_epoch: Option<u64>,
}

impl ServiceRequest {
    /// A PCG solve of `A x = b` at the given relative tolerance. The
    /// tolerance is part of the compatibility key: only requests with
    /// bit-identical tolerances share a batch, so batching can never
    /// change what "converged" means for a request.
    pub fn pcg(rhs: Vec<f64>, rel_tolerance: f64) -> Self {
        ServiceRequest {
            kind: RequestKind::Solve {
                rhs: RhsSource::Ready(rhs),
                engine: EngineKind::Pcg,
                tol_bits: rel_tolerance.to_bits(),
            },
            pinned_epoch: None,
        }
    }

    /// [`ServiceRequest::pcg`] with the right-hand side produced by a
    /// closure on the aggregator thread. A panic in the closure becomes
    /// [`ServiceError::RequestPanicked`] for this request only.
    pub fn pcg_deferred(
        rhs: impl FnOnce() -> Vec<f64> + Send + 'static,
        rel_tolerance: f64,
    ) -> Self {
        ServiceRequest {
            kind: RequestKind::Solve {
                rhs: RhsSource::Deferred(Box::new(rhs)),
                engine: EngineKind::Pcg,
                tol_bits: rel_tolerance.to_bits(),
            },
            pinned_epoch: None,
        }
    }

    /// A direct solve through the published context's (lazily built,
    /// then shared) Cholesky factorization of the system matrix.
    pub fn direct(rhs: Vec<f64>) -> Self {
        ServiceRequest {
            kind: RequestKind::Solve {
                rhs: RhsSource::Ready(rhs),
                engine: EngineKind::Direct,
                tol_bits: 0,
            },
            pinned_epoch: None,
        }
    }

    /// A transient simulation of one [`SourceScenario`] against the
    /// published grid context. Compatible simulate requests are grouped
    /// into one [`tracered_powergrid::transient::simulate_pcg_batch_outcomes`]
    /// call — the PR 2/PR 6 machinery this service was built to feed.
    pub fn simulate(scenario: SourceScenario) -> Self {
        ServiceRequest { kind: RequestKind::Simulate { scenario }, pinned_epoch: None }
    }

    /// Pins the request to a context epoch: if the published epoch has
    /// moved on by the time the request would be batched, it fails with
    /// [`ServiceError::StaleEpoch`] instead of silently running against
    /// a topology it was not written for.
    pub fn pinned(mut self, epoch: u64) -> Self {
        self.pinned_epoch = Some(epoch);
        self
    }
}

/// Per-request outcome of a batched linear solve. `x` is bit-identical
/// to what a one-request batch would have produced (per-column
/// recurrences are independent); `batch_width` records how many
/// batch-mates actually shared the blocked solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// PCG iterations this request's column performed (0 for direct).
    pub iterations: usize,
    /// Final relative residual of the column.
    pub rel_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Why the column stopped — the PR 6 classification, per request.
    pub reason: TerminationReason,
    /// Context epoch the solve ran against.
    pub epoch: u64,
    /// Number of requests that shared the blocked solve.
    pub batch_width: usize,
}

/// Per-request outcome of a batched transient simulation.
#[derive(Debug, Clone)]
pub struct SimulateOutcome {
    /// The scenario's outcome — [`ScenarioOutcome::Failed`] carries the
    /// typed per-scenario failure of PR 6, and never aborts batch-mates.
    pub outcome: ScenarioOutcome,
    /// Context epoch the simulation ran against.
    pub epoch: u64,
    /// Number of scenarios that shared the batch.
    pub batch_width: usize,
}

/// A successful service response.
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// Response to a [`ServiceRequest::pcg`] / [`ServiceRequest::direct`].
    Solve(SolveOutcome),
    /// Response to a [`ServiceRequest::simulate`].
    Simulate(SimulateOutcome),
}

impl ServiceResponse {
    /// The solve outcome, if this was a solve request.
    pub fn into_solve(self) -> Option<SolveOutcome> {
        match self {
            ServiceResponse::Solve(s) => Some(s),
            ServiceResponse::Simulate(_) => None,
        }
    }

    /// The simulate outcome, if this was a simulate request.
    pub fn into_simulate(self) -> Option<SimulateOutcome> {
        match self {
            ServiceResponse::Solve(_) => None,
            ServiceResponse::Simulate(s) => Some(s),
        }
    }
}

/// Typed per-request failures. Every variant fails exactly one request;
/// the aggregator itself never panics and keeps serving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// No context has been published yet.
    NoContext,
    /// The request needs a grid context, but the published context has
    /// no grid attached.
    NoGridContext,
    /// The request was pinned to an epoch the service has moved past
    /// (or has not reached).
    StaleEpoch {
        /// The epoch the request was pinned to.
        pinned: u64,
        /// The epoch that was current when the request was batched.
        current: u64,
    },
    /// The right-hand side length disagrees with the published system.
    WrongLength {
        /// Published system dimension.
        expected: usize,
        /// Submitted right-hand-side length.
        found: usize,
    },
    /// The right-hand side contained a NaN/Inf entry.
    NonFiniteRhs {
        /// Index of the first non-finite entry.
        index: usize,
    },
    /// A deferred right-hand-side closure panicked; only this request
    /// fails, and the aggregator keeps serving.
    RequestPanicked,
    /// The solve kernel itself panicked; every request of the batch
    /// fails typed, and the aggregator keeps serving.
    BatchPanicked,
    /// A shared solver failure (e.g. the direct factorization of the
    /// system matrix failed on every rung of the boost ladder).
    Solver(SparseError),
    /// The service shut down before answering.
    ServiceStopped,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoContext => write!(f, "no solver context has been published"),
            ServiceError::NoGridContext => {
                write!(f, "the published context has no grid attached")
            }
            ServiceError::StaleEpoch { pinned, current } => {
                write!(f, "request pinned to epoch {pinned}, but epoch {current} is current")
            }
            ServiceError::WrongLength { expected, found } => {
                write!(f, "right-hand side has {found} entries, system has {expected}")
            }
            ServiceError::NonFiniteRhs { index } => {
                write!(f, "non-finite right-hand-side entry at index {index}")
            }
            ServiceError::RequestPanicked => {
                write!(f, "the request's right-hand-side closure panicked")
            }
            ServiceError::BatchPanicked => write!(f, "the batch solve kernel panicked"),
            ServiceError::Solver(e) => write!(f, "solver failure: {e}"),
            ServiceError::ServiceStopped => write!(f, "the service stopped before answering"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

/// What a [`Ticket`] resolves to.
pub type ServiceResult = Result<ServiceResponse, ServiceError>;

/// A handle to one in-flight request. Dropping the ticket abandons the
/// response (the solve still runs with its batch).
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<ServiceResult>,
}

impl Ticket {
    /// Blocks until the request is answered. Resolves to
    /// [`ServiceError::ServiceStopped`] if the service shut down first.
    pub fn wait(self) -> ServiceResult {
        self.rx.recv().unwrap_or(Err(ServiceError::ServiceStopped))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<ServiceResult> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::ServiceStopped)),
        }
    }
}
