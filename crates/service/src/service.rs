//! The service handle and its clients.
//!
//! [`SolverService::start`] spawns the aggregator thread and returns the
//! owning handle; [`SolverService::client`] mints cheap, cloneable
//! [`ServiceClient`]s that any thread can submit through. Publishing a
//! context ([`SolverService::publish`]) factorizes outside the state
//! lock, consults the factor cache, and atomically bumps the epoch —
//! requests already being solved finish on the epoch snapshot they
//! started with.

use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use tracered_solver::SolverContext;
use tracered_sparse::order::Ordering;
use tracered_sparse::{BoostSchedule, KernelVariant, SparseError};

use crate::aggregator;
use crate::context::{CacheKey, ContextSpec, EpochState, PublishedContext};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::request::{RequestKind, ServiceError, ServiceRequest, ServiceResult, Ticket};

/// Tuning knobs of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most requests one blocked kernel invocation may serve (also the
    /// column count cap of the underlying multi-RHS solves).
    pub max_batch_width: usize,
    /// How long the aggregator lingers for batch-mates once a request is
    /// at the head of the queue. Zero disables lingering: batches only
    /// form from requests that are already queued together.
    pub max_linger: Duration,
    /// Worker threads for the PCG kernels. Part of the arithmetic
    /// contract: responses are bit-identical to solo solves *at the same
    /// thread count*, so equivalence checks must hold this fixed.
    pub solver_threads: usize,
    /// Worker threads for factorizations (context builds and the lazy
    /// direct factor). Factorization is bit-identical at every count.
    pub factor_threads: usize,
    /// Iteration cap for PCG requests.
    pub max_iterations: usize,
    /// Diagonal-boost ladder for factorizations performed by the
    /// service.
    pub boost: BoostSchedule,
    /// Fill-reducing ordering for factorizations performed by the
    /// service (context builds and lazy direct factors).
    pub ordering: Ordering,
    /// Numeric Cholesky kernel for factorizations performed by the
    /// service. Affects summation order, so callers publishing specs
    /// must fold it into the config tag (as
    /// `SparsifyConfig::fingerprint` does) to keep cache slots distinct.
    pub kernel: KernelVariant,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch_width: 8,
            max_linger: Duration::from_micros(200),
            solver_threads: 1,
            factor_threads: 1,
            max_iterations: 10_000,
            boost: BoostSchedule::default(),
            ordering: Ordering::MinDegree,
            kernel: KernelVariant::Scalar,
        }
    }
}

/// One queued request: what to do, the epoch pin, where to answer, and
/// when it was accepted (feeds the end-to-end latency histogram).
pub(crate) struct Pending {
    pub kind: RequestKind,
    pub pinned: Option<u64>,
    pub reply: Sender<ServiceResult>,
    pub enqueued: Instant,
}

/// Front-end channel protocol.
pub(crate) enum Msg {
    /// One request.
    One(Pending),
    /// An atomic group: all members enter the queue back-to-back, so
    /// compatible members deterministically share batches (up to the
    /// width cap) regardless of client/aggregator interleaving.
    Many(Vec<Pending>),
    /// Stop after answering everything already queued.
    Shutdown,
}

/// State shared between the service handle, its clients, and the
/// aggregator thread.
pub(crate) struct Shared {
    pub state: Mutex<EpochState>,
    pub metrics: ServiceMetrics,
}

/// A long-running solver service: immutable `Arc`'d factors underneath,
/// a channel front-end on top, and a dedicated aggregator thread
/// micro-batching compatible requests in between.
///
/// Dropping the handle shuts the service down gracefully: queued
/// requests are answered first, then the aggregator thread exits and is
/// joined.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tracered_graph::gen::{grid2d, WeightProfile};
/// use tracered_graph::laplacian::laplacian_with_shifts;
/// use tracered_service::{ContextSpec, ServiceConfig, ServiceRequest, SolverService};
///
/// let g = grid2d(8, 8, WeightProfile::Unit, 3);
/// let a = Arc::new(laplacian_with_shifts(&g, &vec![0.05; 64]));
/// let svc = SolverService::start(ServiceConfig::default());
/// svc.publish(ContextSpec::new(Arc::clone(&a), a)).unwrap();
/// let client = svc.client();
/// let ticket = client.submit(ServiceRequest::pcg(vec![1.0; 64], 1e-8));
/// let outcome = ticket.wait().unwrap().into_solve().unwrap();
/// assert!(outcome.converged);
/// ```
pub struct SolverService {
    tx: Sender<Msg>,
    shared: Arc<Shared>,
    cfg: ServiceConfig,
    worker: Option<thread::JoinHandle<()>>,
}

impl SolverService {
    /// Starts the aggregator thread and returns the owning handle.
    pub fn start(cfg: ServiceConfig) -> Self {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            state: Mutex::new(EpochState::default()),
            metrics: ServiceMetrics::default(),
        });
        let shared_for_worker = Arc::clone(&shared);
        let cfg_for_worker = cfg.clone();
        let worker = thread::Builder::new()
            .name("tracered-aggregator".into())
            .spawn(move || aggregator::run(rx, shared_for_worker, cfg_for_worker))
            .expect("spawning the aggregator thread failed");
        SolverService { tx, shared, cfg, worker: Some(worker) }
    }

    /// A cheap, cloneable submission handle for this service.
    pub fn client(&self) -> ServiceClient {
        ServiceClient { tx: self.tx.clone(), shared: Arc::clone(&self.shared) }
    }

    /// Builds (or retrieves from the factor cache) a solver context for
    /// `spec` and atomically installs it as the new current epoch.
    /// Returns the new epoch number — hand it to
    /// [`ServiceRequest::pinned`] to make requests topology-safe.
    ///
    /// The factorization runs *outside* the state lock; requests keep
    /// being served against the previous epoch until the swap, and
    /// batches in flight at the swap finish on their snapshot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Solver`] wrapping the underlying
    /// [`SparseError`] when the spec is malformed (shape mismatch, bad
    /// probes, non-finite entries) or the preconditioner factorization
    /// fails on every boost rung.
    pub fn publish(&self, spec: ContextSpec) -> Result<u64, ServiceError> {
        let n = spec.system.ncols();
        if let Some(grid) = &spec.grid {
            if grid.grid.num_nodes() != n {
                return Err(ServiceError::Solver(SparseError::DimensionMismatch {
                    expected: n,
                    found: grid.grid.num_nodes(),
                }));
            }
            if let Some(&bad) = grid.probes.iter().find(|&&p| p >= n) {
                return Err(ServiceError::Solver(SparseError::InvalidValue {
                    what: format!("probe node {bad} out of bounds for {n} nodes"),
                }));
            }
        }
        let key = CacheKey {
            system_fp: spec.system.fingerprint(),
            precond_fp: spec.precond_matrix.fingerprint(),
            config_tag: spec.config_tag,
        };
        let cached = {
            let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.cache.get(&key).cloned()
        };
        let ctx = match cached {
            Some(ctx) => {
                self.shared.metrics.cache_hits.inc();
                ctx
            }
            None => {
                self.shared.metrics.cache_misses.inc();
                // Factorize outside the lock: publishing a big topology
                // must not stall request service on the old epoch.
                let built = SolverContext::build_with(
                    Arc::clone(&spec.system),
                    Arc::clone(&spec.precond_matrix),
                    &self.cfg.boost,
                    self.cfg.factor_threads,
                    self.cfg.ordering,
                    self.cfg.kernel,
                )
                .map(Arc::new)
                .map_err(ServiceError::Solver)?;
                let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.cache.entry(key).or_insert(built).clone()
            }
        };
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.epoch += 1;
        let epoch = state.epoch;
        state.current = Some(PublishedContext { ctx, grid: spec.grid.map(Arc::new), epoch });
        self.shared.metrics.publishes.inc();
        Ok(epoch)
    }

    /// An [`crate::ContingencyInvalidator`] bound to this service: hand
    /// it to [`tracered_powergrid::simulate_contingency_batch`] so every
    /// applied/reverted outage bumps the service epoch and stales
    /// pinned requests instead of answering them from a factor built
    /// for the unperturbed topology.
    pub fn contingency_hook(&self) -> crate::ContingencyInvalidator {
        crate::ContingencyInvalidator::new(Arc::clone(&self.shared))
    }

    /// The current epoch number, or `None` before the first publish.
    pub fn current_epoch(&self) -> Option<u64> {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.current.as_ref().map(|p| p.epoch)
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Graceful shutdown: answers everything queued, then joins the
    /// aggregator thread. Equivalent to dropping the handle, but
    /// explicit at call sites that care about ordering.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A cloneable submission handle. Clients are `Send + Sync`; any number
/// of threads may submit concurrently, and each submission gets its own
/// [`Ticket`].
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<Msg>,
    shared: Arc<Shared>,
}

impl ServiceClient {
    fn pending(&self, req: ServiceRequest) -> (Pending, Ticket) {
        self.shared.metrics.submitted.inc();
        self.shared.metrics.queue_depth.inc();
        let (reply, rx) = mpsc::channel();
        let pending =
            Pending { kind: req.kind, pinned: req.pinned_epoch, reply, enqueued: Instant::now() };
        (pending, Ticket { rx })
    }

    /// Submits one request. The returned [`Ticket`] resolves to
    /// [`ServiceError::ServiceStopped`] if the service shuts down before
    /// answering.
    pub fn submit(&self, req: ServiceRequest) -> Ticket {
        let (pending, ticket) = self.pending(req);
        let _ = self.tx.send(Msg::One(pending));
        ticket
    }

    /// Submits a group of requests that enter the queue back-to-back
    /// (one channel message), making batch composition deterministic:
    /// compatible neighbours share batches up to the width cap no matter
    /// how the aggregator's draining interleaves with other clients.
    pub fn submit_many(&self, reqs: Vec<ServiceRequest>) -> Vec<Ticket> {
        let mut pendings = Vec::with_capacity(reqs.len());
        let mut tickets = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (pending, ticket) = self.pending(req);
            pendings.push(pending);
            tickets.push(ticket);
        }
        let _ = self.tx.send(Msg::Many(pendings));
        tickets
    }

    /// Submit-and-wait convenience for callers without concurrency.
    pub fn solve(&self, req: ServiceRequest) -> ServiceResult {
        self.submit(req).wait()
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}
