//! Solver-as-a-service: async request aggregation over shared immutable
//! factors.
//!
//! The batch programs of this workspace (`robust_solve`, the transient
//! ensemble engines) assume one caller that owns its matrices and knows
//! its full workload up front. Interactive power-grid analysis is shaped
//! differently: many concurrent producers — an IR-drop what-if loop, a
//! vectorless verification sweep, an incremental ECO checker — fire
//! single solves against *one* shared topology, and the expensive state
//! (the sparsifier, its Cholesky factor, the preconditioner) must be
//! paid once and reused by everyone. This crate is that long-running
//! front-end.
//!
//! # Architecture
//!
//! ```text
//!  ServiceClient ─┐   mpsc    ┌────────────┐  compatible   ┌──────────────┐
//!  ServiceClient ─┼──────────▶│ aggregator │──batches of──▶│  block_pcg / │
//!  ServiceClient ─┘  requests │  (thread)  │  ≤ W requests │  solve_multi │
//!                             └────────────┘               │  / simulate  │
//!        ▲                          │                      └──────────────┘
//!        │ Ticket (typed result)    │ snapshot per batch          │
//!        └──────────────────────────┴─── Arc<SolverContext> ◀─────┘
//!                                        (epoch-published, cached)
//! ```
//!
//! Three design rules keep the service honest:
//!
//! 1. **Batching never changes arithmetic.** Requests share a batch only
//!    when their compatibility key (engine + bit-exact tolerance) and
//!    epoch match, and the blocked kernels underneath run each column
//!    through an independent recurrence — a batched response is
//!    bit-identical to the one-at-a-time response at the same thread
//!    count. The `service_batching` test suite pins this.
//! 2. **Faults are per-request.** A NaN right-hand side, a wrong-length
//!    vector, a panicking closure, or a stale epoch pin fails *that*
//!    request with a typed [`ServiceError`]; batch-mates complete
//!    unaffected and the aggregator keeps serving.
//! 3. **Topology swaps are epochs.** [`SolverService::publish`]
//!    atomically installs a new context (factor cache keyed by matrix
//!    fingerprints + config tag); in-flight batches finish on the epoch
//!    snapshot they started with, and requests pinned to an old epoch
//!    are refused rather than silently re-targeted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod aggregator;
pub mod context;
pub mod contingency;
pub mod metrics;
pub mod request;
pub mod service;

pub use context::{ContextSpec, GridContext};
pub use contingency::ContingencyInvalidator;
pub use metrics::MetricsSnapshot;
pub use request::{
    EngineKind, ServiceError, ServiceRequest, ServiceResponse, ServiceResult, SimulateOutcome,
    SolveOutcome, Ticket,
};
pub use service::{ServiceClient, ServiceConfig, SolverService};

// Shared-handle audit: the whole point of the crate is that these cross
// threads freely.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SolverService>();
    assert_send_sync::<ServiceClient>();
    assert_send_sync::<ContextSpec>();
    assert_send_sync::<MetricsSnapshot>();
};
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ServiceRequest>();
    assert_send::<Ticket>();
};
