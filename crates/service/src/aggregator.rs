//! The aggregator thread: drain, group, batch, reply.
//!
//! One dedicated thread owns the request queue. Each cycle it takes the
//! oldest pending request, derives its *compatibility key* (engine +
//! tolerance bits for solves; the scenario family for simulations),
//! gathers up to `max_batch_width` same-key requests — lingering at most
//! `max_linger` for stragglers — and executes them as **one** blocked
//! kernel invocation: [`tracered_solver::block_pcg`], a multi-RHS direct
//! substitution, or
//! [`tracered_powergrid::simulate_pcg_batch_outcomes`]. The aggregator
//! only groups, routes and splits; the numerical contract (batched
//! columns are bit-identical to solo columns at a fixed thread count)
//! belongs to the kernels underneath.
//!
//! Fault isolation is structural: per-request faults (wrong length,
//! non-finite entries, a panicking deferred closure, a stale epoch pin)
//! are rejected with typed errors *before* the kernel runs, so their
//! batch-mates proceed unaffected, and the kernel call itself is wrapped
//! in `catch_unwind` so even a panicking solve fails its batch typed —
//! the aggregator never wedges and never dies.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Instant;

use tracered_obs::Timer;
use tracered_powergrid::transient::{simulate_pcg_batch_outcomes, SourceScenario};
use tracered_solver::{block_pcg, PcgOptions, TerminationReason};
use tracered_sparse::MultiVec;

use crate::context::PublishedContext;
use crate::request::{
    EngineKind, RequestKind, RhsSource, ServiceError, ServiceResponse, ServiceResult,
    SimulateOutcome, SolveOutcome,
};
use crate::service::{Msg, Pending, ServiceConfig, Shared};

/// Compatibility key: requests share a batch iff their keys are equal
/// (and their pinned epochs, if any, match the current epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKey {
    Solve { engine: EngineKind, tol_bits: u64 },
    Simulate,
}

fn batch_key(kind: &RequestKind) -> BatchKey {
    match kind {
        RequestKind::Solve { engine, tol_bits, .. } => {
            BatchKey::Solve { engine: *engine, tol_bits: *tol_bits }
        }
        RequestKind::Simulate { .. } => BatchKey::Simulate,
    }
}

/// Absorbs one channel message into the queue; `false` means shutdown.
fn absorb(msg: Msg, queue: &mut VecDeque<Pending>) -> bool {
    match msg {
        Msg::One(p) => queue.push_back(p),
        Msg::Many(ps) => queue.extend(ps),
        Msg::Shutdown => return false,
    }
    true
}

/// Books a request out of the in-flight accounting. Every reply funnels
/// through here, so the queue-depth gauge and the end-to-end latency
/// histogram see exactly one decrement/observation per accepted request.
fn settle(shared: &Shared, enqueued: Instant) {
    shared.metrics.queue_depth.dec();
    shared.metrics.latency.record_duration(enqueued.elapsed());
}

fn reply_err(shared: &Shared, reply: &Sender<ServiceResult>, enqueued: Instant, err: ServiceError) {
    shared.metrics.failed.inc();
    settle(shared, enqueued);
    let _ = reply.send(Err(err));
}

fn reply_ok(
    shared: &Shared,
    reply: &Sender<ServiceResult>,
    enqueued: Instant,
    resp: ServiceResponse,
) {
    shared.metrics.completed.inc();
    settle(shared, enqueued);
    let _ = reply.send(Ok(resp));
}

/// The aggregator main loop. Exits when a [`Msg::Shutdown`] arrives (or
/// every sender is gone), after first answering everything already
/// queued.
pub(crate) fn run(rx: Receiver<Msg>, shared: Arc<Shared>, cfg: ServiceConfig) {
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut open = true;
    loop {
        if queue.is_empty() {
            if !open {
                break;
            }
            match rx.recv() {
                Ok(msg) => {
                    if !absorb(msg, &mut queue) {
                        open = false;
                    }
                }
                Err(_) => open = false,
            }
            continue;
        }

        // Snapshot the published context once per batch: in-flight work
        // finishes on this epoch even if a publish lands mid-solve.
        let published = {
            let state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.current.clone()
        };
        let Some(published) = published else {
            // Nothing published: everything queued fails typed, now.
            while let Some(p) = queue.pop_front() {
                reply_err(&shared, &p.reply, p.enqueued, ServiceError::NoContext);
            }
            continue;
        };

        // Head of the queue anchors the batch.
        let Some(head) = queue.pop_front() else { continue };
        if let Some(pinned) = head.pinned {
            if pinned != published.epoch {
                shared.metrics.stale_rejections.inc();
                reply_err(
                    &shared,
                    &head.reply,
                    head.enqueued,
                    ServiceError::StaleEpoch { pinned, current: published.epoch },
                );
                continue;
            }
        }
        if matches!(head.kind, RequestKind::Simulate { .. }) && published.grid.is_none() {
            reply_err(&shared, &head.reply, head.enqueued, ServiceError::NoGridContext);
            continue;
        }

        let key = batch_key(&head.kind);
        let mut batch = vec![head];
        let t_linger = Timer::start("service.linger");
        let deadline = Instant::now() + cfg.max_linger;
        loop {
            // Pull compatible requests already waiting, in arrival
            // order. Stale-pinned same-key requests fail here without
            // occupying a batch slot.
            let mut i = 0;
            while i < queue.len() && batch.len() < cfg.max_batch_width {
                if batch_key(&queue[i].kind) != key {
                    i += 1;
                    continue;
                }
                let Some(q) = queue.remove(i) else { break };
                match q.pinned {
                    Some(p) if p != published.epoch => {
                        shared.metrics.stale_rejections.inc();
                        reply_err(
                            &shared,
                            &q.reply,
                            q.enqueued,
                            ServiceError::StaleEpoch { pinned: p, current: published.epoch },
                        );
                    }
                    _ => batch.push(q),
                }
            }
            if batch.len() >= cfg.max_batch_width || !open {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(msg) => {
                    if !absorb(msg, &mut queue) {
                        open = false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }

        shared.metrics.linger.record_duration(t_linger.stop());

        let _batch_span = tracered_obs::span!("service.batch", { width: batch.len() });
        if matches!(batch[0].kind, RequestKind::Simulate { .. }) {
            execute_simulate_batch(batch, &published, &shared);
        } else {
            execute_solve_batch(batch, &published, &shared, &cfg);
        }
    }

    // Refuse anything that slipped in after shutdown, typed.
    while let Some(p) = queue.pop_front() {
        reply_err(&shared, &p.reply, p.enqueued, ServiceError::ServiceStopped);
    }
}

fn execute_solve_batch(
    batch: Vec<Pending>,
    published: &PublishedContext,
    shared: &Shared,
    cfg: &ServiceConfig,
) {
    let ctx = &published.ctx;
    let n = ctx.dimension();

    // Materialize and vet every right-hand side. A faulted request is
    // answered right here; survivors carry on into the blocked kernel.
    let mut engine = EngineKind::Pcg;
    let mut tol_bits = 0u64;
    let mut survivors: Vec<(Sender<ServiceResult>, Instant, Vec<f64>)> =
        Vec::with_capacity(batch.len());
    let vet_span = tracered_obs::span!("service.vet", { width: batch.len() });
    for p in batch {
        let Pending { kind, reply, enqueued, .. } = p;
        let RequestKind::Solve { rhs, engine: e, tol_bits: t } = kind else {
            unreachable!("solve batches are homogeneous by construction");
        };
        engine = e;
        tol_bits = t;
        let rhs = match rhs {
            RhsSource::Ready(v) => Ok(v),
            RhsSource::Deferred(f) => {
                catch_unwind(AssertUnwindSafe(f)).map_err(|_| ServiceError::RequestPanicked)
            }
        };
        match rhs {
            Err(e) => {
                shared.metrics.faults_isolated.inc();
                reply_err(shared, &reply, enqueued, e);
            }
            Ok(v) if v.len() != n => {
                shared.metrics.faults_isolated.inc();
                reply_err(
                    shared,
                    &reply,
                    enqueued,
                    ServiceError::WrongLength { expected: n, found: v.len() },
                );
            }
            Ok(v) => match v.iter().position(|x| !x.is_finite()) {
                Some(index) => {
                    shared.metrics.faults_isolated.inc();
                    reply_err(shared, &reply, enqueued, ServiceError::NonFiniteRhs { index });
                }
                None => survivors.push((reply, enqueued, v)),
            },
        }
    }
    drop(vet_span);
    if survivors.is_empty() {
        return;
    }

    let width = survivors.len();
    shared.metrics.record_batch(width);
    let columns: Vec<&[f64]> = survivors.iter().map(|(_, _, v)| v.as_slice()).collect();
    let b = match MultiVec::from_columns(&columns) {
        Ok(b) => b,
        Err(e) => {
            for (reply, enqueued, _) in &survivors {
                reply_err(shared, reply, *enqueued, ServiceError::Solver(e.clone()));
            }
            return;
        }
    };

    match engine {
        EngineKind::Pcg => {
            let opts = PcgOptions {
                rel_tolerance: f64::from_bits(tol_bits),
                max_iterations: cfg.max_iterations,
                threads: cfg.solver_threads.max(1),
            };
            let sol = {
                let _kernel = tracered_obs::span!("service.kernel", { width: width });
                catch_unwind(AssertUnwindSafe(|| {
                    block_pcg(ctx.system(), &b, ctx.preconditioner(), &opts)
                }))
            };
            match sol {
                Ok(sol) => {
                    for (j, (reply, enqueued, _)) in survivors.iter().enumerate() {
                        reply_ok(
                            shared,
                            reply,
                            *enqueued,
                            ServiceResponse::Solve(SolveOutcome {
                                x: sol.x.col(j).to_vec(),
                                iterations: sol.iterations[j],
                                rel_residual: sol.rel_residual[j],
                                converged: sol.converged[j],
                                reason: sol.reasons[j],
                                epoch: published.epoch,
                                batch_width: width,
                            }),
                        );
                    }
                }
                Err(_) => {
                    for (reply, enqueued, _) in &survivors {
                        reply_err(shared, reply, *enqueued, ServiceError::BatchPanicked);
                    }
                }
            }
        }
        EngineKind::Direct => {
            let factor = match ctx.direct_factor() {
                Ok(f) => f,
                Err(e) => {
                    for (reply, enqueued, _) in &survivors {
                        reply_err(shared, reply, *enqueued, ServiceError::Solver(e.clone()));
                    }
                    return;
                }
            };
            let sol = {
                let _kernel = tracered_obs::span!("service.kernel", { width: width });
                catch_unwind(AssertUnwindSafe(|| factor.solve_multi(&b)))
            };
            match sol {
                Ok(x) => {
                    for (j, (reply, enqueued, bj)) in survivors.iter().enumerate() {
                        let xj = x.col(j);
                        let r_inf = ctx.system().residual_inf_norm(xj, bj);
                        let b_inf = bj.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                        let rel = if b_inf > 0.0 { r_inf / b_inf } else { r_inf };
                        let finite = rel.is_finite() && xj.iter().all(|v| v.is_finite());
                        reply_ok(
                            shared,
                            reply,
                            *enqueued,
                            ServiceResponse::Solve(SolveOutcome {
                                x: xj.to_vec(),
                                iterations: 0,
                                rel_residual: rel,
                                converged: finite,
                                reason: if finite {
                                    TerminationReason::Converged
                                } else {
                                    TerminationReason::NonFinite
                                },
                                epoch: published.epoch,
                                batch_width: width,
                            }),
                        );
                    }
                }
                Err(_) => {
                    for (reply, enqueued, _) in &survivors {
                        reply_err(shared, reply, *enqueued, ServiceError::BatchPanicked);
                    }
                }
            }
        }
    }
}

fn execute_simulate_batch(batch: Vec<Pending>, published: &PublishedContext, shared: &Shared) {
    let Some(grid) = published.grid.as_deref() else {
        // The head was vetted before batching and batch-mates share the
        // same epoch snapshot, so this cannot happen; answer typed
        // anyway rather than panic.
        for p in batch {
            reply_err(shared, &p.reply, p.enqueued, ServiceError::NoGridContext);
        }
        return;
    };
    let scenarios: Vec<SourceScenario> = batch
        .iter()
        .map(|p| match &p.kind {
            RequestKind::Simulate { scenario } => scenario.clone(),
            RequestKind::Solve { .. } => {
                unreachable!("simulate batches are homogeneous by construction")
            }
        })
        .collect();
    let width = batch.len();
    shared.metrics.record_batch(width);
    let outcomes = {
        let _kernel = tracered_obs::span!("service.kernel", { width: width });
        catch_unwind(AssertUnwindSafe(|| {
            simulate_pcg_batch_outcomes(
                &grid.grid,
                &grid.transient,
                published.ctx.preconditioner(),
                &grid.probes,
                &scenarios,
            )
        }))
    };
    match outcomes {
        Ok(Ok(outcomes)) => {
            for (p, outcome) in batch.iter().zip(outcomes) {
                reply_ok(
                    shared,
                    &p.reply,
                    p.enqueued,
                    ServiceResponse::Simulate(SimulateOutcome {
                        outcome,
                        epoch: published.epoch,
                        batch_width: width,
                    }),
                );
            }
        }
        Ok(Err(e)) => {
            for p in &batch {
                reply_err(shared, &p.reply, p.enqueued, ServiceError::Solver(e.clone()));
            }
        }
        Err(_) => {
            for p in &batch {
                reply_err(shared, &p.reply, p.enqueued, ServiceError::BatchPanicked);
            }
        }
    }
}
