//! Lock-free service instrumentation.
//!
//! Every interesting event in the service — a submission, a batch, a
//! cache hit, an isolated fault — bumps a typed [`tracered_obs`]
//! instrument here: relaxed-atomic counters for totals, a gauge for the
//! live queue depth, and log-scale histograms for end-to-end latency and
//! per-batch linger. The aggregator publishes through these instruments
//! and never blocks on them; [`MetricsSnapshot`] is the
//! consistent-enough view handed to callers and to the
//! `service_scaling` benchmark.

use tracered_obs::{Counter, Gauge, Histogram, HistogramSummary, Watermark};

/// Internal instruments (one instance lives in the service's shared
/// state; all threads bump it with relaxed ordering). Instruments are
/// per-service, not process-global: two services in one process keep
/// independent books.
#[derive(Debug, Default)]
pub(crate) struct ServiceMetrics {
    pub submitted: Counter,
    pub completed: Counter,
    pub failed: Counter,
    pub batches: Counter,
    pub batched_requests: Counter,
    pub max_batch_width: Watermark,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub stale_rejections: Counter,
    pub faults_isolated: Counter,
    pub publishes: Counter,
    pub outages_applied: Counter,
    pub update_fallbacks: Counter,
    /// Requests accepted but not yet answered (incremented at submit,
    /// decremented when the reply is sent — on every exit path).
    pub queue_depth: Gauge,
    /// End-to-end request latency, submit to reply, over all outcomes.
    pub latency: Histogram,
    /// Time each batch spent assembling (head pop to kernel dispatch),
    /// bounded above by the configured `max_linger` plus drain time.
    pub linger: Histogram,
}

impl ServiceMetrics {
    pub(crate) fn record_batch(&self, executed_width: usize) {
        self.batches.inc();
        self.batched_requests.add(executed_width as u64);
        self.max_batch_width.observe(executed_width as u64);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            batches: self.batches.get(),
            batched_requests: self.batched_requests.get(),
            max_batch_width: self.max_batch_width.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            stale_rejections: self.stale_rejections.get(),
            faults_isolated: self.faults_isolated.get(),
            publishes: self.publishes.get(),
            outages_applied: self.outages_applied.get(),
            update_fallbacks: self.update_fallbacks.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            max_queue_depth: self.queue_depth.max_seen().max(0) as u64,
            latency: self.latency.summary(),
            linger: self.linger.summary(),
        }
    }
}

/// A point-in-time copy of the service instruments. Counters are bumped
/// with relaxed atomics; a snapshot taken while requests are in flight
/// is approximate, one taken after the relevant tickets resolved is
/// exact for those requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsSnapshot {
    /// Requests accepted by a [`crate::ServiceClient`].
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a typed [`crate::ServiceError`].
    pub failed: u64,
    /// Batched kernel invocations (width ≥ 1 each).
    pub batches: u64,
    /// Requests that went through a batched kernel (faulted requests
    /// rejected before the kernel are not counted).
    pub batched_requests: u64,
    /// Widest batch executed so far.
    pub max_batch_width: u64,
    /// Context publishes that reused a cached factorization.
    pub cache_hits: u64,
    /// Context publishes that had to factorize.
    pub cache_misses: u64,
    /// Requests rejected because their pinned epoch was no longer
    /// current.
    pub stale_rejections: u64,
    /// Per-request faults (bad RHS, panicking closure, stale pin)
    /// isolated without disturbing batch-mates.
    pub faults_isolated: u64,
    /// Contexts published over the service lifetime.
    pub publishes: u64,
    /// Contingency outages applied against the service's topology (each
    /// bumps the epoch twice — apply and revert — via the
    /// [`crate::ContingencyInvalidator`] hook).
    pub outages_applied: u64,
    /// Contingency perturbations that fell back from an incremental
    /// factor update to a regularized refactorization — the degradation
    /// counter mirroring the solver's `degraded_fallbacks` convention.
    pub update_fallbacks: u64,
    /// Requests in flight (submitted, not yet answered) at snapshot
    /// time.
    pub queue_depth: u64,
    /// Deepest the in-flight queue has ever been.
    pub max_queue_depth: u64,
    /// Live end-to-end latency distribution (submit → reply), with
    /// log-bucket p50/p90/p99.
    pub latency: HistogramSummary,
    /// Live batch-assembly (linger) distribution.
    pub linger: HistogramSummary,
}

impl MetricsSnapshot {
    /// Mean executed batch width — the aggregation payoff the
    /// `service_scaling` benchmark sweeps (`> 1` means requests actually
    /// shared kernels).
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}
