//! Lock-free service counters.
//!
//! Every interesting event in the service — a submission, a batch, a
//! cache hit, an isolated fault — bumps a relaxed atomic here. The
//! aggregator publishes through these counters and never blocks on them;
//! [`MetricsSnapshot`] is the consistent-enough view handed to callers
//! and to the `service_scaling` benchmark.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters (one instance lives in the service's shared
/// state; all threads bump it with relaxed ordering).
#[derive(Debug, Default)]
pub(crate) struct ServiceMetrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_batch_width: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub stale_rejections: AtomicU64,
    pub faults_isolated: AtomicU64,
    pub publishes: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, executed_width: usize) {
        Self::bump(&self.batches);
        Self::add(&self.batched_requests, executed_width as u64);
        self.max_batch_width.fetch_max(executed_width as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch_width: self.max_batch_width.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            stale_rejections: self.stale_rejections.load(Ordering::Relaxed),
            faults_isolated: self.faults_isolated.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the service counters. Counters are bumped
/// with relaxed atomics; a snapshot taken while requests are in flight
/// is approximate, one taken after the relevant tickets resolved is
/// exact for those requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsSnapshot {
    /// Requests accepted by a [`crate::ServiceClient`].
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a typed [`crate::ServiceError`].
    pub failed: u64,
    /// Batched kernel invocations (width ≥ 1 each).
    pub batches: u64,
    /// Requests that went through a batched kernel (faulted requests
    /// rejected before the kernel are not counted).
    pub batched_requests: u64,
    /// Widest batch executed so far.
    pub max_batch_width: u64,
    /// Context publishes that reused a cached factorization.
    pub cache_hits: u64,
    /// Context publishes that had to factorize.
    pub cache_misses: u64,
    /// Requests rejected because their pinned epoch was no longer
    /// current.
    pub stale_rejections: u64,
    /// Per-request faults (bad RHS, panicking closure, stale pin)
    /// isolated without disturbing batch-mates.
    pub faults_isolated: u64,
    /// Contexts published over the service lifetime.
    pub publishes: u64,
}

impl MetricsSnapshot {
    /// Mean executed batch width — the aggregation payoff the
    /// `service_scaling` benchmark sweeps (`> 1` means requests actually
    /// shared kernels).
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}
