//! Batching-equivalence suite: the service's micro-batched responses
//! must be **bit-identical** to one-at-a-time responses at the same
//! thread count, mixed-compatibility queues must split into multiple
//! batches, and epoch/fault handling must be typed and per-request.
//!
//! CI runs this suite under `TRACERED_THREADS=1` and
//! `TRACERED_THREADS=4`; the service's `solver_threads` follows the
//! global pool size, so both the serial and the parallel kernels are
//! exercised.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;
use std::time::Duration;

use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, TransientConfig};
use tracered_service::{
    ContextSpec, GridContext, ServiceConfig, ServiceError, ServiceRequest, SolverService,
};
use tracered_sparse::CscMatrix;

fn threads() -> usize {
    tracered_par::global_pool_size()
}

fn system(side: usize, shift: f64) -> Arc<CscMatrix> {
    let g = grid2d(side, side, WeightProfile::Unit, 9);
    Arc::new(laplacian_with_shifts(&g, &vec![shift; side * side]))
}

/// Deterministic, seed-dependent right-hand side.
fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed * 0x85eb_ca6b);
            ((h % 2000) as f64) / 1000.0 - 1.0
        })
        .collect()
}

fn cfg_with_width(width: usize) -> ServiceConfig {
    ServiceConfig {
        max_batch_width: width,
        max_linger: Duration::from_millis(2),
        solver_threads: threads(),
        ..Default::default()
    }
}

fn start_published(width: usize, a: &Arc<CscMatrix>) -> SolverService {
    let svc = SolverService::start(cfg_with_width(width));
    svc.publish(ContextSpec::new(Arc::clone(a), Arc::clone(a))).unwrap();
    svc
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() == 0.0)
}

#[test]
fn micro_batched_pcg_is_bit_identical_to_one_at_a_time() {
    let a = system(12, 0.05);
    let n = a.ncols();
    // One-at-a-time baseline: width-1 batches by construction.
    let solo_svc = start_published(1, &a);
    let solo_client = solo_svc.client();
    for width in [1usize, 3, 8] {
        let svc = start_published(width, &a);
        let client = svc.client();
        let reqs: Vec<ServiceRequest> =
            (0..width).map(|j| ServiceRequest::pcg(rhs(n, j as u64), 1e-8)).collect();
        let tickets = client.submit_many(reqs);
        for (j, t) in tickets.into_iter().enumerate() {
            let batched = t.wait().unwrap().into_solve().unwrap();
            assert_eq!(batched.batch_width, width, "all {width} requests must share one batch");
            let solo = solo_client
                .solve(ServiceRequest::pcg(rhs(n, j as u64), 1e-8))
                .unwrap()
                .into_solve()
                .unwrap();
            assert_eq!(solo.batch_width, 1);
            assert_eq!(batched.iterations, solo.iterations, "width {width}, request {j}");
            assert_eq!(batched.converged, solo.converged);
            assert_eq!(batched.reason, solo.reason);
            assert!(
                (batched.rel_residual - solo.rel_residual).abs() == 0.0,
                "width {width}, request {j}: residual drifted"
            );
            assert!(
                bits_equal(&batched.x, &solo.x),
                "width {width}, request {j}: batched solution is not bit-identical"
            );
        }
        let m = svc.metrics();
        assert_eq!(m.batches, 1);
        assert_eq!(m.max_batch_width, width as u64);
    }
}

#[test]
fn micro_batched_direct_is_bit_identical_to_one_at_a_time() {
    let a = system(10, 0.1);
    let n = a.ncols();
    let solo_svc = start_published(1, &a);
    let solo_client = solo_svc.client();
    let svc = start_published(5, &a);
    let client = svc.client();
    let tickets =
        client.submit_many((0..5).map(|j| ServiceRequest::direct(rhs(n, 40 + j))).collect());
    for (j, t) in tickets.into_iter().enumerate() {
        let batched = t.wait().unwrap().into_solve().unwrap();
        assert_eq!(batched.batch_width, 5);
        assert!(batched.converged);
        let solo = solo_client
            .solve(ServiceRequest::direct(rhs(n, 40 + j as u64)))
            .unwrap()
            .into_solve()
            .unwrap();
        assert!(bits_equal(&batched.x, &solo.x), "direct request {j} drifted under batching");
    }
}

#[test]
fn mixed_compatibility_queue_splits_into_multiple_batches() {
    let a = system(12, 0.05);
    let n = a.ncols();
    let svc = start_published(8, &a);
    let client = svc.client();
    // Interleaved submission order; compatibility, not arrival order,
    // decides grouping: 4 × (pcg, 1e-8), 3 × (pcg, 1e-10), 2 × direct.
    let tol_a = 1e-8;
    let tol_b = 1e-10;
    let reqs = vec![
        ServiceRequest::pcg(rhs(n, 0), tol_a),
        ServiceRequest::pcg(rhs(n, 1), tol_b),
        ServiceRequest::pcg(rhs(n, 2), tol_a),
        ServiceRequest::direct(rhs(n, 3)),
        ServiceRequest::pcg(rhs(n, 4), tol_b),
        ServiceRequest::pcg(rhs(n, 5), tol_a),
        ServiceRequest::direct(rhs(n, 6)),
        ServiceRequest::pcg(rhs(n, 7), tol_b),
        ServiceRequest::pcg(rhs(n, 8), tol_a),
    ];
    let tickets = client.submit_many(reqs);
    let outcomes: Vec<_> =
        tickets.into_iter().map(|t| t.wait().unwrap().into_solve().unwrap()).collect();
    let widths: Vec<usize> = outcomes.iter().map(|o| o.batch_width).collect();
    assert_eq!(widths, vec![4, 3, 4, 2, 3, 4, 2, 3, 4], "groups must batch by compatibility key");
    for o in &outcomes {
        assert!(o.converged);
    }
    let m = svc.metrics();
    assert_eq!(m.batches, 3, "three compatibility classes → three batches");
    assert_eq!(m.batched_requests, 9);
    assert!((m.mean_batch_width() - 3.0).abs() < 1e-12);
}

#[test]
fn simulate_requests_batch_and_stay_bit_identical() {
    let pg = Arc::new(synthesize(&SynthConfig {
        mesh: 10,
        source_fraction: 0.2,
        seed: 33,
        ..Default::default()
    }));
    let (near, far) = probe_pair(&pg);
    let g = pg.conductance_shared();
    let tcfg = TransientConfig { t_end: 1e-9, threads: threads(), ..Default::default() };
    let spec = || {
        ContextSpec::new(Arc::clone(&g), Arc::clone(&g)).with_grid(GridContext {
            grid: Arc::clone(&pg),
            transient: tcfg,
            probes: vec![near, far],
        })
    };
    let scenarios = [1.0, 0.5, 1.5]
        .map(|s| tracered_powergrid::transient::SourceScenario::uniform(s, pg.sources().len()));

    let solo_svc = SolverService::start(cfg_with_width(1));
    solo_svc.publish(spec()).unwrap();
    let solo_client = solo_svc.client();

    let svc = SolverService::start(cfg_with_width(3));
    svc.publish(spec()).unwrap();
    let tickets =
        svc.client().submit_many(scenarios.iter().cloned().map(ServiceRequest::simulate).collect());
    for (t, sc) in tickets.into_iter().zip(scenarios.iter()) {
        let batched = t.wait().unwrap().into_simulate().unwrap();
        assert_eq!(batched.batch_width, 3);
        let solo = solo_client
            .solve(ServiceRequest::simulate(sc.clone()))
            .unwrap()
            .into_simulate()
            .unwrap();
        assert_eq!(solo.batch_width, 1);
        let br = batched.outcome.result().expect("scenario must complete");
        let sr = solo.outcome.result().expect("scenario must complete");
        for idx in 0..2 {
            assert!(
                br.max_probe_difference(sr, idx, 200) == 0.0,
                "probe {idx}: batched transient drifted from one-at-a-time"
            );
        }
    }
}

#[test]
fn epoch_swap_rejects_stale_pins_and_reuses_cached_factors() {
    let a = system(10, 0.05);
    let b = system(10, 0.25); // different topology epoch
    let n = a.ncols();
    let svc = SolverService::start(cfg_with_width(4));
    let client = svc.client();

    let e1 = svc.publish(ContextSpec::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
    let ok = client.solve(ServiceRequest::pcg(rhs(n, 1), 1e-8).pinned(e1)).unwrap();
    assert_eq!(ok.into_solve().unwrap().epoch, e1);

    let e2 = svc.publish(ContextSpec::new(Arc::clone(&b), Arc::clone(&b))).unwrap();
    assert_ne!(e1, e2);
    match client.solve(ServiceRequest::pcg(rhs(n, 2), 1e-8).pinned(e1)) {
        Err(ServiceError::StaleEpoch { pinned, current }) => {
            assert_eq!(pinned, e1);
            assert_eq!(current, e2);
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // Unpinned requests ride the current epoch.
    let fresh = client.solve(ServiceRequest::pcg(rhs(n, 3), 1e-8)).unwrap();
    assert_eq!(fresh.into_solve().unwrap().epoch, e2);

    // Flipping back to the first topology hits the factor cache.
    let before = svc.metrics();
    let e3 = svc.publish(ContextSpec::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
    let after = svc.metrics();
    assert_eq!(after.cache_hits, before.cache_hits + 1);
    assert_eq!(after.cache_misses, before.cache_misses);
    assert!(client.solve(ServiceRequest::pcg(rhs(n, 4), 1e-8).pinned(e3)).is_ok());
    assert_eq!(after.stale_rejections, 1);
}

/// Regression for the fingerprint-collision bug: wildcard match arms in
/// `SparsifyConfig::fingerprint` used to map every ordering (and any
/// future kernel) to the same tag bits, so two configs differing only in
/// those knobs would share a cache slot and one would be served the
/// other's factor. Publishing specs whose tags differ only by ordering
/// or kernel must each miss the cache.
#[test]
fn cache_misses_when_only_ordering_or_kernel_differs() {
    use tracered_core::SparsifyConfig;
    use tracered_sparse::order::Ordering;
    use tracered_sparse::KernelVariant;

    let a = system(10, 0.05);
    let svc = SolverService::start(cfg_with_width(4));

    let base = SparsifyConfig::default();
    let nd = SparsifyConfig::default().ordering(Ordering::NestedDissection);
    let sup = SparsifyConfig::default().kernel(KernelVariant::Supernodal);
    assert_ne!(base.fingerprint(), nd.fingerprint());
    assert_ne!(base.fingerprint(), sup.fingerprint());
    assert_ne!(nd.fingerprint(), sup.fingerprint());

    for cfg in [&base, &nd, &sup] {
        let before = svc.metrics();
        let spec = ContextSpec::new(Arc::clone(&a), Arc::clone(&a)).with_tag(cfg.fingerprint());
        svc.publish(spec).unwrap();
        let after = svc.metrics();
        assert_eq!(after.cache_misses, before.cache_misses + 1);
        assert_eq!(after.cache_hits, before.cache_hits);
    }
    // Same tag again: now it is a hit.
    let before = svc.metrics();
    let spec = ContextSpec::new(Arc::clone(&a), Arc::clone(&a)).with_tag(sup.fingerprint());
    svc.publish(spec).unwrap();
    let after = svc.metrics();
    assert_eq!(after.cache_hits, before.cache_hits + 1);
    assert_eq!(after.cache_misses, before.cache_misses);
}

#[test]
fn missing_context_and_missing_grid_are_typed_errors() {
    let svc = SolverService::start(cfg_with_width(4));
    let client = svc.client();
    assert!(matches!(
        client.solve(ServiceRequest::pcg(vec![1.0; 16], 1e-8)),
        Err(ServiceError::NoContext)
    ));
    let a = system(4, 0.1);
    svc.publish(ContextSpec::new(Arc::clone(&a), a)).unwrap();
    assert!(matches!(
        client.solve(ServiceRequest::simulate(
            tracered_powergrid::transient::SourceScenario::nominal()
        )),
        Err(ServiceError::NoGridContext)
    ));
}

#[test]
fn faulted_request_fails_alone_and_batch_mates_complete() {
    let a = system(12, 0.05);
    let n = a.ncols();
    let solo_svc = start_published(1, &a);
    let solo_client = solo_svc.client();
    let svc = start_published(4, &a);
    let client = svc.client();
    let mut bad = rhs(n, 9);
    bad[n / 2] = f64::NAN;
    let tickets = client.submit_many(vec![
        ServiceRequest::pcg(rhs(n, 10), 1e-8),
        ServiceRequest::pcg(bad, 1e-8),
        ServiceRequest::pcg(rhs(n, 11), 1e-8),
        ServiceRequest::pcg(rhs(n, 12)[..n - 3].to_vec(), 1e-8),
    ]);
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    assert!(matches!(
        &results[1],
        Err(ServiceError::NonFiniteRhs { index }) if *index == n / 2
    ));
    assert!(matches!(
        &results[3],
        Err(ServiceError::WrongLength { expected, found }) if *expected == n && *found == n - 3
    ));
    for (j, seed) in [(0usize, 10u64), (2, 11)] {
        let got = results[j].as_ref().unwrap().clone().into_solve().unwrap();
        assert_eq!(got.batch_width, 2, "only the two healthy requests enter the kernel");
        let solo = solo_client
            .solve(ServiceRequest::pcg(rhs(n, seed), 1e-8))
            .unwrap()
            .into_solve()
            .unwrap();
        assert!(bits_equal(&got.x, &solo.x), "batch-mate {j} was disturbed by the faulted request");
    }
    let m = svc.metrics();
    assert_eq!(m.faults_isolated, 2);
    assert_eq!(m.completed, 2);
    assert_eq!(m.failed, 2);
}

#[test]
fn concurrent_clients_all_complete() {
    let a = system(10, 0.05);
    let n = a.ncols();
    let svc = start_published(8, &a);
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let client = svc.client();
            std::thread::spawn(move || {
                for k in 0..5u64 {
                    let out = client
                        .solve(ServiceRequest::pcg(rhs(n, t * 100 + k), 1e-8))
                        .unwrap()
                        .into_solve()
                        .unwrap();
                    assert!(out.converged);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let m = svc.metrics();
    assert_eq!(m.submitted, 20);
    assert_eq!(m.completed, 20);
    assert_eq!(m.failed, 0);
}

#[test]
fn shutdown_answers_queued_requests() {
    let a = system(8, 0.1);
    let n = a.ncols();
    let svc = start_published(4, &a);
    let client = svc.client();
    let tickets =
        client.submit_many((0..6).map(|j| ServiceRequest::pcg(rhs(n, j), 1e-8)).collect());
    svc.shutdown();
    // Everything queued before shutdown is answered, not dropped.
    for t in tickets {
        assert!(t.wait().unwrap().into_solve().unwrap().converged);
    }
    // Submissions after shutdown resolve to a typed stop.
    assert!(matches!(
        client.solve(ServiceRequest::pcg(rhs(n, 99), 1e-8)),
        Err(ServiceError::ServiceStopped)
    ));
}

#[test]
fn contingency_hook_stales_pins_and_counts_outages() {
    let a = system(8, 0.05);
    let n = a.ncols();
    let svc = start_published(4, &a);
    let client = svc.client();
    let epoch = svc.current_epoch().unwrap();

    // Drive the hook from a real sweep: each matrix perturbation bumps
    // the epoch twice (apply + revert) and the outage counter once.
    let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
    let outages = [
        tracered_powergrid::Outage::LineOutage { edge: 0 },
        tracered_powergrid::Outage::Reweight { edge: 3, new_weight: 2.5 },
    ];
    let hook = svc.contingency_hook();
    let sweep = tracered_powergrid::simulate_contingency_batch(
        &pg,
        &outages,
        &[0],
        &tracered_powergrid::ContingencyConfig::default(),
        Some(&hook),
    )
    .unwrap();
    assert_eq!(sweep.report.completed, 2);
    assert_eq!(sweep.report.applied_updates + sweep.report.update_fallbacks, 2);

    let m = svc.metrics();
    assert_eq!(m.outages_applied, 2);
    assert_eq!(m.update_fallbacks, sweep.report.update_fallbacks as u64);

    // Pins taken before the sweep are stale now.
    match client.solve(ServiceRequest::pcg(rhs(n, 5), 1e-8).pinned(epoch)) {
        Err(ServiceError::StaleEpoch { pinned, current }) => {
            assert_eq!(pinned, epoch);
            assert_eq!(current, epoch + 4);
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // Unpinned requests still ride the (restored) topology.
    assert!(client.solve(ServiceRequest::pcg(rhs(n, 6), 1e-8)).unwrap().into_solve().is_some());
}
