//! Spectral graph partitioning with sparsifier-accelerated Fiedler
//! vector computation (paper §4.3).
//!
//! ```sh
//! cargo run --release -p tracered-bench --example graph_partitioning
//! ```

use std::time::Instant;

use tracered_core::{sparsify, sparsify_partitioned, Method, PartitionedConfig, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_partition::{bisect_direct, bisect_pcg, partition_shift, relative_error};
use tracered_solver::precond::CholPreconditioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A rectangular FEM-style mesh (rectangular so the Fiedler value is
    // simple and the optimal cut is across the short side).
    let g = tri_mesh(80, 50, WeightProfile::Unit, 3);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    let steps = 5;

    // Direct solver path.
    let t0 = Instant::now();
    let direct = bisect_direct(&g, steps, 17)?;
    let t_direct = t0.elapsed();
    println!(
        "direct   : {:.3}s, cut weight {:.0}, balance {:.3}",
        t_direct.as_secs_f64(),
        direct.cut_weight,
        direct.balance
    );

    // Sparsifier-preconditioned PCG path: build the sparsifier under the
    // same uniform shift the partitioner uses.
    let t1 = Instant::now();
    let s = partition_shift(&g);
    let sp =
        sparsify(&g, &SparsifyConfig::new(Method::TraceReduction).shift(ShiftPolicy::Uniform(s)))?;
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g))?;
    let iterative = bisect_pcg(&g, &pre, steps, 17, 1e-3)?;
    let t_iter = t1.elapsed();
    println!(
        "iterative: {:.3}s (incl. sparsification), cut weight {:.0}, balance {:.3}, avg {:.1} PCG its/step",
        t_iter.as_secs_f64(),
        iterative.cut_weight,
        iterative.balance,
        iterative.inner_iterations as f64 / steps as f64
    );

    // Partition agreement (the paper's RelErr, ~1e-3).
    let err = relative_error(&direct.side, &iterative.side);
    println!("RelErr vs direct partition: {err:.2e}");
    assert!(err < 0.05, "partitions must agree closely");

    // The decomposition also feeds the partition-parallel sparsifier:
    // densify four domains concurrently and stitch them back together.
    let t2 = Instant::now();
    let psp = sparsify_partitioned(&g, &PartitionedConfig::new(4).threads(None))?;
    let pr = psp.partition_report();
    println!(
        "partitioned sparsify (k=4, {} threads): {:.3}s — cut {} edges \
         (connectors {}, boundary recovered {}), balance {:.3}",
        pr.threads,
        t2.elapsed().as_secs_f64(),
        pr.cut.count,
        pr.connector_edges,
        pr.boundary_recovered,
        pr.balance_ratio,
    );
    assert!(psp.sparsifier().as_graph(&g).is_connected());
    Ok(())
}
