//! Sparsify a user-supplied SDD matrix in Matrix Market format — the
//! path for running this reproduction on the paper's actual SuiteSparse
//! matrices (`ecology2.mtx`, `thermal2.mtx`, …).
//!
//! ```sh
//! cargo run --release -p tracered-bench --example custom_matrix -- path/to/matrix.mtx
//! ```
//!
//! Without an argument, writes a small demo matrix to a temp file first
//! so the example is runnable out of the box.

use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::mmio::{read_graph_path, write_laplacian};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Self-demo: generate a mesh, write it as .mtx, read it back.
            let g = tracered_graph::gen::tri_mesh(
                40,
                40,
                tracered_graph::gen::WeightProfile::LogUniform { lo: 0.2, hi: 5.0 },
                1,
            );
            let slack: Vec<f64> =
                (0..g.num_nodes()).map(|i| if i % 64 == 0 { 1.0 } else { 0.0 }).collect();
            let path = std::env::temp_dir().join("tracered_demo.mtx");
            let f = std::fs::File::create(&path)?;
            write_laplacian(f, &g, &slack)?;
            println!("no path given; wrote demo matrix to {}", path.display());
            path
        }
    };

    let mm = read_graph_path(&path)?;
    println!(
        "read {}: {} nodes, {} edges, {} grounded nodes",
        path.display(),
        mm.graph.num_nodes(),
        mm.graph.num_edges(),
        mm.diag_slack.iter().filter(|&&s| s > 0.0).count()
    );
    if !mm.graph.is_connected() {
        println!(
            "matrix graph has {} components; sparsifying the largest is left to the caller",
            mm.graph.num_components()
        );
        return Ok(());
    }

    // Grounding: the file's own diagonal slack plus a small algorithmic
    // floor for nodes with none.
    let n = mm.graph.num_nodes();
    let floor = 1e-3 * 2.0 * mm.graph.total_weight() / n as f64;
    let shifts: Vec<f64> = mm.diag_slack.iter().map(|&s| s + floor).collect();
    let sp = sparsify(
        &mm.graph,
        &SparsifyConfig::new(Method::TraceReduction).shift(ShiftPolicy::PerNode(shifts)),
    )?;
    println!(
        "sparsifier: {} of {} edges in {:.3}s",
        sp.edge_ids().len(),
        mm.graph.num_edges(),
        sp.report().total_time.as_secs_f64()
    );

    let lg = sp.graph_laplacian(&mm.graph);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&mm.graph))?;
    let kappa = relative_condition_number(&lg, pre.factor(), 60, 1);
    let b: Vec<f64> = (0..n).map(|i| ((i % 29) as f64) - 14.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    println!("κ(L_G, L_P) ≈ {kappa:.1}; PCG to 1e-6 in {} iterations", sol.iterations);
    Ok(())
}
