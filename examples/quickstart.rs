//! Quickstart: sparsify a mesh and use the sparsifier as a PCG
//! preconditioner.
//!
//! ```sh
//! cargo run --release -p tracered-bench --example quickstart
//! ```

use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::{CholPreconditioner, IcPreconditioner, JacobiPreconditioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A graph: a 60×60 triangulated FEM-style mesh with log-uniform
    //    conductances (the paper's kind of test case).
    let g = tri_mesh(60, 60, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 42);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 2. Sparsify with the paper's approximate-trace-reduction algorithm:
    //    spanning tree + 10% |V| spectrally-critical off-tree edges.
    //    `threads(None)` runs the scoring engine on all available cores;
    //    the selected edges are bit-identical to the serial path.
    let sp = sparsify(&g, &SparsifyConfig::new(Method::TraceReduction).threads(None))?;
    println!(
        "sparsifier: {} edges ({:.1}% of the graph), built in {:.3}s on {} thread(s)",
        sp.edge_ids().len(),
        100.0 * sp.edge_ids().len() as f64 / g.num_edges() as f64,
        sp.report().total_time.as_secs_f64(),
        sp.report().iterations.first().map_or(1, |it| it.threads)
    );

    // 3. Quality: the relative condition number κ(L_G, L_P).
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g))?;
    let kappa = relative_condition_number(&lg, pre.factor(), 60, 7);
    println!("relative condition number κ(L_G, L_P) ≈ {kappa:.1}");

    // 4. Use it: PCG on L_G x = b with the sparsifier preconditioner
    //    versus a Jacobi baseline.
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let opts = PcgOptions::with_tolerance(1e-6);
    let fast = pcg(&lg, &b, &pre, &opts);
    let ic = pcg(&lg, &b, &IcPreconditioner::from_matrix(&lg)?, &opts);
    let slow = pcg(&lg, &b, &JacobiPreconditioner::from_matrix(&lg)?, &opts);
    println!(
        "PCG to 1e-6: sparsifier {} iterations, IC(0) {} iterations, Jacobi {} iterations",
        fast.iterations, ic.iterations, slow.iterations
    );
    assert!(fast.converged && ic.converged && slow.converged);
    assert!(lg.residual_inf_norm(&fast.x, &b) < 1e-3);
    Ok(())
}
