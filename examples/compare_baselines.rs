//! Compares the three criticality metrics — approximate trace reduction
//! (the paper), GRASS spectral perturbation, and feGRASS-style effective
//! resistance — under identical edge budgets, reproducing the paper's
//! core claim in miniature.
//!
//! ```sh
//! cargo run --release -p tracered-bench --example compare_baselines
//! ```

use tracered_core::metrics::{relative_condition_number, trace_proxy_hutchinson};
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_graph::Graph;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

fn report(name: &str, g: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== {name}: {} nodes, {} edges ==", g.num_nodes(), g.num_edges());
    println!("{:<22} {:>8} {:>10} {:>8} {:>8}", "method", "kappa", "trace", "PCG its", "T_s (s)");
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i % 17) as f64) - 8.0).collect();
    for (label, method) in [
        ("trace reduction", Method::TraceReduction),
        ("GRASS", Method::Grass),
        ("effective resistance", Method::EffectiveResistance),
        ("JL resistance", Method::JlResistance),
    ] {
        let sp = sparsify(g, &SparsifyConfig::new(method))?;
        let lg = sp.graph_laplacian(g);
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(g))?;
        let kappa = relative_condition_number(&lg, pre.factor(), 60, 3);
        let trace = trace_proxy_hutchinson(&lg, pre.factor(), 30, 5);
        let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-3));
        println!(
            "{:<22} {:>8.1} {:>10.1} {:>8} {:>8.3}",
            label,
            kappa,
            trace,
            sol.iterations,
            sp.report().total_time.as_secs_f64()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    report(
        "triangular FEM mesh",
        &tri_mesh(50, 50, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 7),
    )?;
    report("2-D grid", &grid2d(60, 60, WeightProfile::Unit, 11))?;
    report(
        "wide-weight grid",
        &grid2d(55, 55, WeightProfile::LogUniform { lo: 0.01, hi: 100.0 }, 15),
    )?;
    Ok(())
}
