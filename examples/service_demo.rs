//! Solver-as-a-service: a long-running aggregation front-end over shared
//! immutable factors. The service owns the published `SolverContext`
//! behind `Arc`s; concurrent clients submit independent requests and a
//! dedicated aggregator thread micro-batches compatible ones (same
//! engine, epoch, and tolerance) into single blocked kernel calls —
//! without changing a single bit of any response.
//!
//! ```sh
//! cargo run --release -p tracered-integration --example service_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, SourceScenario, TransientConfig};
use tracered_service::{
    ContextSpec, GridContext, ServiceConfig, ServiceError, ServiceRequest, SolverService,
};

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed.wrapping_mul(0x85eb_ca6b));
            ((h % 2000) as f64) / 1000.0 - 1.0
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper pipeline produces the immutable inputs: a power-grid
    // conductance system and its trace-reduction sparsifier.
    let pg = Arc::new(synthesize(&SynthConfig { mesh: 24, seed: 7, ..Default::default() }));
    let n = pg.num_nodes();
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg)?;
    let (near, far) = probe_pair(&pg);

    // Start the service and publish epoch 1. Publishing factorizes the
    // preconditioner once; every request after that shares the Arc'd
    // factor. The grid context additionally enables Simulate requests.
    let svc = SolverService::start(ServiceConfig {
        max_batch_width: 8,
        max_linger: Duration::from_millis(2),
        ..Default::default()
    });
    let spec = |shift: f64| {
        let system = if shift == 0.0 {
            pg.conductance_shared()
        } else {
            Arc::new(tracered_graph::laplacian::laplacian_with_shifts(pg.graph(), &vec![shift; n]))
        };
        ContextSpec::new(system, Arc::new(sp.laplacian(pg.graph())))
            .with_tag(sp_cfg.fingerprint())
            .with_grid(GridContext {
                grid: Arc::clone(&pg),
                transient: TransientConfig { t_end: 1e-9, ..Default::default() },
                probes: vec![near, far],
            })
    };
    let epoch = svc.publish(spec(0.0))?;
    println!("published epoch {epoch}: {n}-node power grid, shared sparsifier factor");

    // A burst of compatible PCG requests submitted together aggregates
    // into one blocked solve. Each response records the width of the
    // batch it rode in; the numbers are bit-identical to solo solves.
    let client = svc.client();
    let tickets =
        client.submit_many((0..6).map(|j| ServiceRequest::pcg(rhs(n, j), 1e-8)).collect());
    for (j, t) in tickets.into_iter().enumerate() {
        let out = t.wait()?.into_solve().expect("solve response");
        println!(
            "  pcg[{j}]: {} iterations, rel residual {:.2e}, batch width {}",
            out.iterations, out.rel_residual, out.batch_width
        );
    }

    // Direct requests batch separately (different engine key) through
    // the cached Cholesky factor's multi-RHS path.
    let direct = client.solve(ServiceRequest::direct(rhs(n, 100)))?.into_solve().unwrap();
    println!(
        "  direct: rel residual {:.2e}, batch width {}",
        direct.rel_residual, direct.batch_width
    );

    // Simulate requests ride the grid context: compatible scenarios run
    // as one batch transient with per-scenario outcomes.
    let sim = client
        .solve(ServiceRequest::simulate(SourceScenario::uniform(1.2, pg.sources().len())))?
        .into_simulate()
        .expect("simulate response");
    println!("  simulate: scenario completed = {}", sim.outcome.result().is_some());

    // Topology swaps are epochs. Requests pinned to a stale epoch fail
    // with a typed error instead of silently running on the new factor;
    // republishing a previously seen spec reuses the factor cache.
    let stale = epoch;
    let epoch2 = svc.publish(spec(0.25))?;
    let err = client
        .solve(ServiceRequest::pcg(rhs(n, 200), 1e-8).pinned(stale))
        .expect_err("stale pin must be rejected");
    assert!(matches!(err, ServiceError::StaleEpoch { .. }));
    println!("epoch {epoch2} live: stale-pinned request rejected with {err}");
    svc.publish(spec(0.0))?; // same fingerprints as epoch 1 → cache hit

    let m = svc.metrics();
    println!(
        "metrics: {} completed / {} failed, {} batches (mean width {:.2}, max {}), \
         factor cache {} hits / {} misses",
        m.completed,
        m.failed,
        m.batches,
        m.mean_batch_width(),
        m.max_batch_width,
        m.cache_hits,
        m.cache_misses
    );
    svc.shutdown();
    Ok(())
}
