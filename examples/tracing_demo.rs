//! Observability end-to-end: run the paper pipeline — sparsify a power
//! grid, publish the context, serve 100 PCG requests — with tracing
//! enabled, then print the hierarchical span report and the service's
//! live latency histogram, and export a `chrome://tracing` trace.
//!
//! The exported JSON loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: spans nest by thread (the aggregator's
//! linger/batch/kernel phases on one track, parallel workers on
//! others), and per-iteration PCG convergence events show up as
//! instants inside each kernel span.
//!
//! ```sh
//! cargo run --release -p tracered-integration --example tracing_demo [TRACE.json]
//! ```
//!
//! The trace path defaults to `tracered_trace.json` in the system temp
//! directory. The example doubles as the CI smoke test for the tracing
//! layer: it asserts the trace is well-formed JSON and contains every
//! expected pipeline phase.

use std::sync::Arc;
use std::time::Duration;

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_service::{ContextSpec, ServiceConfig, ServiceRequest, SolverService};

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed.wrapping_mul(0x85eb_ca6b));
            ((h % 2000) as f64) / 1000.0 - 1.0
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tracered_trace.json"));

    // Flip the recorder on for the whole run; per-iteration convergence
    // events are opt-in separately because they are high-volume.
    let recorder = tracered_obs::recorder();
    recorder.reset();
    tracered_obs::set_enabled(true);
    tracered_obs::set_iter_events(true);

    // Phase 1: the paper pipeline's offline half — sparsify the grid.
    let pg = synthesize(&SynthConfig { mesh: 24, seed: 7, ..Default::default() });
    let n = pg.num_nodes();
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg)?;

    // Phase 2: publish (factorizes the preconditioner once) and serve a
    // burst of 100 compatible requests through the aggregator.
    let svc = SolverService::start(ServiceConfig {
        max_batch_width: 8,
        max_linger: Duration::from_millis(1),
        ..Default::default()
    });
    svc.publish(
        ContextSpec::new(pg.conductance_shared(), Arc::new(sp.laplacian(pg.graph())))
            .with_tag(sp_cfg.fingerprint()),
    )?;
    let client = svc.client();
    let tickets =
        client.submit_many((0..100).map(|j| ServiceRequest::pcg(rhs(n, j), 1e-8)).collect());
    for t in tickets {
        let out = t.wait()?.into_solve().expect("solve response");
        assert!(out.converged, "demo requests converge");
    }
    let m = svc.metrics();
    svc.shutdown();
    tracered_obs::set_iter_events(false);
    tracered_obs::set_enabled(false);

    // The hierarchical report aggregates spans by path; the service's
    // own histograms were live the whole time.
    print!("{}", recorder.report());
    println!(
        "service: {} requests in {} batches (mean width {:.2}); \
         live latency p50 {:.1}µs p90 {:.1}µs p99 {:.1}µs",
        m.completed,
        m.batches,
        m.mean_batch_width(),
        m.latency.p50_s * 1e6,
        m.latency.p90_s * 1e6,
        m.latency.p99_s * 1e6,
    );

    // Smoke gate: every pipeline phase must have left spans behind.
    let trace = recorder.trace();
    for name in [
        "sparsify",
        "sparsify.tree",
        "sparsify.iter",
        "chol.factorize",
        "chol.numeric",
        "service.linger",
        "service.batch",
        "service.kernel",
        "block_pcg.solve",
    ] {
        assert!(trace.has_span(name), "expected span '{name}' missing from the trace");
    }

    // Export for chrome://tracing / Perfetto, and prove well-formedness
    // the hard way (the validator is the same RFC 8259 checker the obs
    // tests use).
    let json = recorder.chrome_trace_json();
    tracered_obs::validate_json(&json).expect("chrome trace must be valid JSON");
    std::fs::write(&out_path, &json)?;
    let iter_events = trace.events.iter().filter(|e| e.name == "block_pcg.iter").count();
    assert!(iter_events > 0, "per-iteration convergence events were enabled");
    println!(
        "chrome trace: {} spans, {iter_events} convergence events -> {}",
        trace.spans.len(),
        out_path.display()
    );
    recorder.reset();
    Ok(())
}
