//! Power-grid transient analysis: direct solver with fixed steps versus
//! the sparsifier-preconditioned iterative solver with breakpoint-driven
//! variable steps (paper §4.2), plus the batched multi-RHS engine
//! advancing a whole ensemble of source-activity scenarios at once.
//!
//! ```sh
//! cargo run --release -p tracered-integration --example power_grid_transient
//! ```

use std::time::Instant;

use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    probe_pair, simulate_direct, simulate_pcg, simulate_pcg_batch, SourceScenario, TransientConfig,
};
use tracered_solver::precond::{CholPreconditioner, Preconditioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40×40 synthetic VDD grid: mesh resistors, C4 pads, 1–10 pF node
    // caps, periodic pulse current sources (the paper's augmentation of
    // the THU benchmarks).
    let pg = synthesize(&SynthConfig { mesh: 40, seed: 7, ..Default::default() });
    println!(
        "power grid: {} nodes, {} resistors, {} sources, {} pads",
        pg.num_nodes(),
        pg.graph().num_edges(),
        pg.sources().len(),
        pg.pad_conductance().iter().filter(|&&g| g > 0.0).count()
    );
    let (near, far) = probe_pair(&pg);
    let probes = vec![near, far];

    // Direct: fixed 10 ps steps (breakpoint-limited), factor once.
    let direct = simulate_direct(
        &pg,
        &TransientConfig { fixed_step: Some(1e-11), ..Default::default() },
        &probes,
    )?;
    println!(
        "direct   : {} steps, factor {:.3}s + stepping {:.3}s, factor memory {:.1} MiB",
        direct.stats.steps,
        direct.stats.factor_time.as_secs_f64(),
        direct.stats.solve_time.as_secs_f64(),
        direct.stats.memory_bytes as f64 / 1048576.0
    );

    // Iterative: sparsify the conductance graph once (grounded by the
    // physical pad conductances), precondition every variable step.
    let cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = tracered_core::sparsify(pg.graph(), &cfg)?;
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph()))?;
    let iter = simulate_pcg(&pg, &TransientConfig::default(), &pre, &probes)?;
    println!(
        "iterative: {} steps, stepping {:.3}s, avg {:.1} PCG iterations/step, preconditioner {:.1} MiB",
        iter.stats.steps,
        iter.stats.solve_time.as_secs_f64(),
        iter.stats.avg_pcg_iterations,
        pre.memory_bytes() as f64 / 1048576.0
    );

    // Accuracy: the two engines must agree (paper: < 16 mV).
    let d_near = direct.max_probe_difference(&iter, 0, 500) * 1e3;
    let d_far = direct.max_probe_difference(&iter, 1, 500) * 1e3;
    println!("max waveform deviation: {d_near:.2} mV (pad node), {d_far:.2} mV (droop node)");
    assert!(d_near < 16.0 && d_far < 16.0);

    // Worst droop observed at the far node.
    let vmin = iter.probes[1].iter().cloned().fold(f64::INFINITY, f64::min);
    println!("worst droop at far node: {:.1} mV below VDD", (pg.vdd() - vmin) * 1e3);

    // Batched ensemble: 8 activity corners (nominal + global scalings of
    // every source) advanced through one blocked PCG solve per timestep.
    // The preconditioner, matrices and time grid are shared; only the
    // right-hand sides differ — the shape the multi-RHS kernels amortize.
    let scenarios: Vec<SourceScenario> = (0..8)
        .map(|i| {
            if i == 0 {
                SourceScenario::nominal()
            } else {
                SourceScenario::uniform(0.25 + 0.25 * i as f64, pg.sources().len())
            }
        })
        .collect();
    let t0 = Instant::now();
    let batch = simulate_pcg_batch(&pg, &TransientConfig::default(), &pre, &probes, &scenarios)?;
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "batch    : {} scenarios in {:.3}s ({:.3}s/scenario amortized, {:.3}s solo above)",
        batch.len(),
        wall,
        wall / batch.len() as f64,
        iter.stats.solve_time.as_secs_f64()
    );
    for (i, r) in batch.iter().enumerate() {
        let vmin = r.probes[1].iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  scenario {i}: avg {:.1} PCG iters/step, worst droop {:.1} mV",
            r.stats.avg_pcg_iterations,
            (pg.vdd() - vmin) * 1e3
        );
    }
    // The nominal column of the batch is the solo run, column for column.
    let d = iter.max_probe_difference(&batch[0], 1, 500);
    assert!(d < 1e-12, "batch nominal column must match the solo run, diff {d}");
    Ok(())
}
